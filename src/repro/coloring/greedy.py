"""Greedy (list) coloring scheduled by color classes.

Given a proper ``c``-coloring of the conflict graph, the classic greedy
schedule iterates over the ``c`` classes; in iteration ``i`` every vertex
(or edge) of class ``i`` simultaneously picks the smallest color of its
list that no already-colored neighbor uses.  Nodes of the same class are
never adjacent, so the step is conflict-free; each class costs one
communication round.

This is the final step of every recursion in the paper (coloring the
constant-degree or ``β/ε``-degree leftover graphs) and, combined with
Linial's O(Δ̄²)-edge coloring, it is also the classic
O(Δ² + log* n)-round baseline for (2Δ−1)-edge coloring.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.coloring.color_reduction import polynomial_step, reduction_schedule, shared_eval_cache
from repro.core.engine import _np, resolve_use_numpy
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


class UsedColorMasks:
    """Shareable, updatable per-node used-color bitmask state.

    One integer per node; bit ``c`` is set iff some incident edge uses
    color ``c``.  In a *proper* edge coloring the incident colors of a
    node are pairwise distinct, so presence bits are exact state: an
    assignment sets one bit at each endpoint and an unassignment clears
    it — no reference counting is ever needed.

    This is the availability state the greedy passes used to build
    internally and discard per call, extracted so long-lived callers can
    own and maintain *one* object across passes: the serving plane's
    :class:`repro.serving.artifact.ColoringArtifact` keeps the masks
    alive across delta repairs, and
    :func:`greedy_edge_coloring_by_classes` accepts an instance as its
    ``used_colors`` state (sharing it across greedy passes without
    rebuilding).  The inconsistency checks in :meth:`assign` /
    :meth:`unassign` are deliberate: the incremental repair engine leans
    on them to turn state-corruption bugs into immediate errors instead
    of silently improper colorings.
    """

    __slots__ = ("_masks",)

    def __init__(self, num_nodes: int) -> None:
        self._masks: List[int] = [0] * num_nodes

    @classmethod
    def from_edge_coloring(cls, graph: Graph, colors: Dict[int, int]) -> "UsedColorMasks":
        """Masks for an existing proper coloring keyed by edge index."""
        state = cls(graph.num_nodes)
        edge_u, edge_v = graph.endpoint_arrays()
        for e, c in colors.items():
            state.assign(edge_u[e], edge_v[e], c)
        return state

    @classmethod
    def from_pair_coloring(
        cls, num_nodes: int, colors: Dict[Tuple[int, int], int]
    ) -> "UsedColorMasks":
        """Masks for an existing proper coloring keyed by endpoint pair."""
        state = cls(num_nodes)
        for (u, v), c in colors.items():
            state.assign(u, v, c)
        return state

    @property
    def num_nodes(self) -> int:
        return len(self._masks)

    def mask(self, v: int) -> int:
        """The used-color bitmask of node ``v``."""
        return self._masks[v]

    def uses(self, v: int, color: int) -> bool:
        """Whether some edge incident to ``v`` uses ``color``."""
        return bool((self._masks[v] >> color) & 1)

    def colors_at(self, v: int) -> List[int]:
        """Sorted colors used at node ``v``."""
        mask = self._masks[v]
        out: List[int] = []
        color = 0
        while mask:
            if mask & 1:
                out.append(color)
            mask >>= 1
            color += 1
        return out

    def assign(self, u: int, v: int, color: int) -> None:
        """Record the edge ``{u, v}`` taking ``color`` (both endpoints)."""
        bit = 1 << color
        masks = self._masks
        if (masks[u] | masks[v]) & bit:
            raise ValueError(
                f"color {color} already used at an endpoint of ({u}, {v}); "
                "the maintained coloring would no longer be proper"
            )
        masks[u] |= bit
        masks[v] |= bit

    def unassign(self, u: int, v: int, color: int) -> None:
        """Clear the edge ``{u, v}``'s ``color`` from both endpoints."""
        bit = 1 << color
        masks = self._masks
        if not (masks[u] & bit and masks[v] & bit):
            raise ValueError(
                f"color {color} is not set at both endpoints of ({u}, {v}); "
                "unassign does not match the maintained state"
            )
        masks[u] &= ~bit
        masks[v] &= ~bit

    @staticmethod
    def smallest_free(blocked: int) -> int:
        """The smallest color whose bit is clear in ``blocked`` (the mex)."""
        # ``blocked + 1`` flips the trailing run of set bits, so the
        # lowest clear bit of ``blocked`` is the lowest set bit here.
        return (~blocked & (blocked + 1)).bit_length() - 1

    def smallest_available(self, u: int, v: int) -> int:
        """The smallest color free at both ``u`` and ``v``."""
        return self.smallest_free(self._masks[u] | self._masks[v])


def greedy_vertex_coloring_by_classes(
    graph: Graph,
    schedule: Sequence[int],
    lists: Optional[Sequence[Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    tracker: Optional[RoundTracker] = None,
) -> List[int]:
    """Greedy vertex coloring scheduled by the classes of ``schedule``.

    Args:
        graph: the graph to color.
        schedule: a proper coloring of ``graph`` used as the schedule.
        lists: optional per-node color lists; defaults to
            ``{0, ..., palette_size - 1}``.
        palette_size: size of the default palette; defaults to Δ + 1.
        tracker: one round is charged per non-empty schedule class.

    Returns the chosen colors, indexed by node.
    """
    if palette_size is None:
        palette_size = graph.max_degree + 1
    colors: List[Optional[int]] = [None] * graph.num_nodes
    classes = sorted(set(schedule))
    for cls in classes:
        members = [v for v in graph.nodes() if schedule[v] == cls]
        if not members:
            continue
        for v in members:
            used = {colors[w] for w in graph.neighbors(v) if colors[w] is not None}
            candidates: Iterable[int] = lists[v] if lists is not None else range(palette_size)
            choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"node {v} has no available color; its list/palette is too small")
            colors[v] = choice
        if tracker is not None:
            tracker.charge(1, "greedy-classes")
    return [c if c is not None else 0 for c in colors]


def greedy_edge_coloring_by_classes(
    graph: Graph,
    schedule: Dict[int, int],
    lists: Optional[Dict[int, Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    edge_set: Optional[Set[int]] = None,
    existing_colors: Optional[Dict[int, int]] = None,
    tracker: Optional[RoundTracker] = None,
    used_colors: Optional[Sequence[Set[int]]] = None,
) -> Dict[int, int]:
    """Greedy list edge coloring scheduled by the classes of ``schedule``.

    Only the edges in ``edge_set`` (default: all edges present in
    ``schedule``) are colored.  ``existing_colors`` are colors of adjacent
    edges colored by earlier stages; they are treated as occupied but are
    not modified.

    Args:
        graph: the host graph (edges are referenced by index).
        schedule: a proper edge coloring of the edges to color (no two
            adjacent edges of ``edge_set`` may share a schedule class).
        lists: optional per-edge color lists; default palette is
            ``{0, ..., palette_size - 1}`` with ``palette_size`` defaulting
            to ``2Δ − 1``.
        tracker: one round is charged per non-empty schedule class.
        used_colors: optional caller-owned per-node used-color state,
            exactly reflecting ``existing_colors``: either per-node sets
            indexed by node, or a :class:`UsedColorMasks` instance (the
            shareable bitmask form the serving plane maintains).  When
            given, availability reads the state directly and assignments
            are added **in place** (callers running many greedy passes
            against one growing coloring share the state instead of
            rebuilding per pass).  Requires that no target edge is
            already colored — presence-only state cannot express
            re-coloring over an existing entry.

    Returns the new colors, keyed by edge index.
    """
    targets = set(schedule.keys()) if edge_set is None else set(edge_set)
    if palette_size is None:
        palette_size = max(1, 2 * graph.max_degree - 1)
    result: Dict[int, int] = {}
    # Group the targets by schedule class in one pass (the per-class
    # choices are simultaneous, so the order within a class is free).
    by_class: Dict[int, List[int]] = {}
    for e in sorted(targets):
        by_class.setdefault(schedule[e], []).append(e)
    edge_u, edge_v = graph.endpoint_arrays()
    # Availability via maintained per-node used-color state: an edge's
    # blocked colors are exactly those used at its two endpoints, so no
    # adjacent-edge row is sliced per query.  Three modes:
    #
    # * caller-owned ``used_colors`` sets (shared across greedy passes) —
    #   read and updated in place;
    # * internal per-node *bitmasks* (one int per node, bit ``c`` set iff
    #   color ``c`` is used there), built lazily on first touch from the
    #   node's incidence row; the smallest available palette color is one
    #   lowest-clear-bit trick instead of a per-candidate set probe;
    # * the (always exact) per-edge scan over the precomputed line-graph
    #   rows, when some target edge is already colored — presence-only
    #   state cannot express re-coloring over an existing entry.
    use_masks = False
    use_mask_state = False
    if used_colors is not None:
        if existing_colors and any(e in existing_colors for e in targets):
            raise ValueError(
                "used_colors requires that no target edge is already colored"
            )
        colored: Dict[int, int] = {}  # shared-state mode neither reads nor writes it
        use_node_sets = True
        use_mask_state = isinstance(used_colors, UsedColorMasks)
        used_at = used_colors
    else:
        colored = dict(existing_colors) if existing_colors else {}
        use_node_sets = False
        use_masks = not any(e in colored for e in targets)
        if use_masks:
            masks: Dict[int, int] = {}
            # When no colors pre-exist, every color ever assigned went to
            # a target edge, and choosing that target's color updated both
            # endpoint masks — an untouched node's mask is simply 0, so
            # the choice loop reads ``masks.get(node, 0)`` with no build
            # step at all.  Pre-existing colors need the lazy incidence
            # scan to load them on first touch.
            scan_on_build = bool(colored)
            if scan_on_build:
                xadj, inc = graph.incidence_csr()

                def used_mask(node: int) -> int:
                    mask = masks.get(node)
                    if mask is None:
                        mask = 0
                        for f in inc[xadj[node] : xadj[node + 1]]:
                            color = colored.get(f)
                            if color is not None:
                                mask |= 1 << color
                        masks[node] = mask
                    return mask

        else:
            offsets, flat = graph.edge_adjacency_csr()
    full_mask = (1 << palette_size) - 1
    if use_masks and not scan_on_build:
        masks_get = masks.get
    for cls in sorted(by_class):
        members = by_class[cls]
        round_choices: List[Tuple[int, int]] = []
        for e in members:
            if use_masks:
                if scan_on_build:
                    blocked = used_mask(edge_u[e]) | used_mask(edge_v[e])
                else:
                    blocked = masks_get(edge_u[e], 0) | masks_get(edge_v[e], 0)
                if lists is None:
                    # Smallest palette color whose bit is clear.
                    available = ~blocked & full_mask
                    choice = (
                        (available & -available).bit_length() - 1 if available else None
                    )
                else:
                    choice = next(
                        (c for c in lists[e] if not (blocked >> c) & 1), None
                    )
            elif use_mask_state:
                blocked = used_at.mask(edge_u[e]) | used_at.mask(edge_v[e])
                if lists is None:
                    available = ~blocked & full_mask
                    choice = (
                        (available & -available).bit_length() - 1 if available else None
                    )
                else:
                    choice = next(
                        (c for c in lists[e] if not (blocked >> c) & 1), None
                    )
            elif use_node_sets:
                candidates: Iterable[int] = (
                    lists[e] if lists is not None else range(palette_size)
                )
                used_u = used_at[edge_u[e]]
                used_v = used_at[edge_v[e]]
                choice = next(
                    (c for c in candidates if c not in used_u and c not in used_v), None
                )
            else:
                candidates = lists[e] if lists is not None else range(palette_size)
                used = {
                    colored[f]
                    for f in flat[offsets[e] : offsets[e + 1]]
                    if f in colored
                }
                choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"edge {e} has no available color; its list/palette is too small")
            round_choices.append((e, choice))
        for e, c in round_choices:
            if used_colors is None:
                # The lazy builds and the scan fallback read ``colored``;
                # caller-owned sets are the only state the shared mode keeps.
                colored[e] = c
            result[e] = c
            if use_masks:
                bit = 1 << c
                u = edge_u[e]
                v = edge_v[e]
                masks[u] = masks.get(u, 0) | bit
                masks[v] = masks.get(v, 0) | bit
            elif use_mask_state:
                used_at.assign(edge_u[e], edge_v[e], c)
            elif use_node_sets:
                used_at[edge_u[e]].add(c)
                used_at[edge_v[e]].add(c)
        if tracker is not None:
            tracker.charge(1, "greedy-edge-classes")
    return result


def _linial_rows_python(
    colors: List[int],
    rows: List[List[int]],
    schedule: Sequence[tuple],
    tracker: Optional[RoundTracker],
) -> List[int]:
    """Reference engine for the line-graph Linial steps (one position per edge)."""
    for q, d in schedule:
        cache = shared_eval_cache(q, d)
        new_colors: List[int] = []
        for position, row in enumerate(rows):
            new_colors.append(
                polynomial_step(colors[position], [colors[j] for j in row], q, d, cache)
            )
        colors = new_colors
        if tracker is not None:
            tracker.charge(1, "linial")
    return colors


def _linial_rows_numpy(
    colors: List[int],
    rows: List[List[int]],
    schedule: Sequence[tuple],
    tracker: Optional[RoundTracker],
) -> List[int]:
    """Vectorized twin of :func:`_linial_rows_python` (bit-identical).

    Thin wrapper flattening the python row lists into the CSR arrays
    :func:`_linial_flat_numpy` consumes (the vectorized setup path of
    :func:`proper_edge_schedule` builds those arrays directly and skips
    the row lists entirely).
    """
    np = _np
    num = len(colors)
    counts = np.fromiter((len(row) for row in rows), dtype=np.int64, count=num)
    flat = np.fromiter(
        (j for row in rows for j in row), dtype=np.int64, count=int(counts.sum())
    )
    return _linial_flat_numpy(
        np.array(colors, dtype=np.int64), flat, counts, schedule, tracker
    )


def _linial_flat_numpy(
    colors_np: "Any",
    flat: "Any",
    counts: "Any",
    schedule: Sequence[tuple],
    tracker: Optional[RoundTracker],
) -> List[int]:
    """Vectorized Linial steps over CSR rows (bit-identical to the reference).

    ``flat`` holds the concatenated per-position neighbor positions,
    ``counts`` the row lengths.  Per reduction step, the polynomial
    values of *all* positions at the candidate point ``x`` are evaluated
    in one base-q digit sweep (exact ``int64`` arithmetic — the same
    ``%``/``//``/modmul chain as :func:`repro.coloring.color_reduction.
    polynomial_value`), and the per-position conflict checks collapse to
    one segmented comparison over the flattened rows.  Every position
    picks the same smallest conflict-free ``x`` the reference engine
    picks.
    """
    np = _np
    num = int(colors_np.shape[0])
    offsets = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    nonempty = counts > 0
    nonempty_offsets = offsets[:-1][nonempty]
    has_rows = bool(nonempty.any())
    for q, d in schedule:
        # Base-q digits, decomposed once per step; a value at ``x`` is
        # then one multiply-add sweep.  Digits and powers are < q, so the
        # unreduced sum stays far inside int64 and one final ``% q``
        # matches the reference's iterative modular chain exactly.
        digits = []
        remaining = colors_np.copy()
        for _ in range(d + 1):
            digits.append(remaining % q)
            remaining //= q
        result = np.empty(num, dtype=np.int64)
        unresolved = np.arange(num, dtype=np.int64)
        for x in range(q):
            # Once only a few stragglers remain, per-position rescans are
            # cheaper than further full-width sweeps; polynomial_step
            # picks the same smallest conflict-free point.
            if unresolved.size * 16 < num and x >= 2:
                break
            value = digits[0].copy()
            power = 1
            for i in range(1, d + 1):
                power = (power * x) % q
                np.add(value, digits[i] * power, out=value)
            value %= q
            # Positions whose value collides with a row neighbor's value.
            conflicted = np.zeros(num, dtype=bool)
            if has_rows:
                eq = value[flat] == np.repeat(value, counts)
                conflicted[nonempty] = np.add.reduceat(eq, nonempty_offsets) > 0
            free = unresolved[~conflicted[unresolved]]
            result[free] = x * q + value[free]
            unresolved = unresolved[conflicted[unresolved]]
            if not unresolved.size:
                break
        if unresolved.size:
            cache = shared_eval_cache(q, d)
            colors_list = colors_np.tolist()
            flat_list = flat.tolist()
            offsets_list = offsets.tolist()
            for p in unresolved.tolist():
                row = flat_list[offsets_list[p] : offsets_list[p + 1]]
                result[p] = polynomial_step(
                    colors_list[p], [colors_list[j] for j in row], q, d, cache
                )
        colors_np = result
        if tracker is not None:
            tracker.charge(1, "linial")
    return colors_np.tolist()


def _schedule_setup_numpy(
    graph: Graph,
    edge_list: List[int],
    tracker: Optional[RoundTracker],
) -> Optional[Dict[int, int]]:
    """Vectorized setup + engine run for :func:`proper_edge_schedule`.

    Replaces the per-part python setup loops — endpoint gathering, the
    per-node incident maps, the initial identifier colors and the merged
    line-graph row building — with array passes over the part: incident
    counts come from one ``bincount``, the grouped position lists from
    one stable argsort, and the per-position rows (each position's
    same-endpoint peers) from ramp-indexed gathers that drop the
    position itself.  Row *order* differs from the python construction
    (u-side peers are grouped by discovery side, not by insertion), but
    the engines are order-insensitive — conflicts are existence checks
    and :func:`polynomial_step` reduces rows to sets — so the schedule
    is bit-identical.  Returns ``None`` when the int64 headroom guards
    trip (huge identifier spaces fall back to the python setup and its
    arbitrary-precision engine).
    """
    np = _np
    k = len(edge_list)
    ids_np = np.fromiter(edge_list, dtype=np.int64, count=k)
    all_u, all_v = graph.endpoint_arrays_np()
    eu = all_u[ids_np]
    ev = all_v[ids_np]
    try:
        node_ids_np = np.asarray(graph.node_ids, dtype=np.int64)
    except OverflowError:
        return None
    a = node_ids_np[eu]
    b = node_ids_np[ev]
    low = np.minimum(a, b)
    high = np.maximum(a, b)
    id_base = int(high.max()) + 1
    # Headroom: the initial colors are < id_base²; overflow would corrupt
    # them silently, so bail out to the python setup first.
    if id_base >= 2**31:
        return None
    colors_np = low * id_base + high
    space = int(colors_np.max()) + 1
    cnt = np.bincount(np.concatenate((eu, ev)), minlength=graph.num_nodes)
    degree_bound = int((cnt[eu] + cnt[ev] - 2).max())
    schedule = reduction_schedule(space, max(1, degree_bound))
    if not schedule:
        return dict(zip(edge_list, colors_np.tolist()))
    if max((d + 1) * q * q for q, d in schedule) >= 2**62:
        return None
    # Incident CSR over the part: positions grouped by endpoint node.
    pos = np.arange(k, dtype=np.int64)
    pos_cat = np.concatenate((pos, pos))
    order = np.argsort(np.concatenate((eu, ev)), kind="stable")
    inc_pos = pos_cat[order]
    inc_xadj = np.zeros(cnt.shape[0] + 1, dtype=np.int64)
    np.cumsum(cnt, out=inc_xadj[1:])

    def side_peers(side_nodes):
        """Per position: its endpoint's full group minus the position itself."""
        group_sizes = cnt[side_nodes]
        total = int(group_sizes.sum())
        cum = np.cumsum(group_sizes)
        ramp = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum - group_sizes, group_sizes)
            + np.repeat(inc_xadj[side_nodes], group_sizes)
        )
        values = inc_pos[ramp]
        return values[values != np.repeat(pos, group_sizes)]

    flat_u = side_peers(eu)
    flat_v = side_peers(ev)
    counts_u = cnt[eu] - 1
    counts_v = cnt[ev] - 1
    counts = counts_u + counts_v
    flat = np.empty(int(counts.sum()), dtype=np.int64)
    starts = np.zeros(k, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])

    def scatter(side_flat, side_counts, side_starts):
        total = int(side_counts.sum())
        if not total:
            return
        cum = np.cumsum(side_counts)
        ramp = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum - side_counts, side_counts)
            + np.repeat(side_starts, side_counts)
        )
        flat[ramp] = side_flat

    scatter(flat_u, counts_u, starts)
    scatter(flat_v, counts_v, starts + counts_u)
    colors = _linial_flat_numpy(colors_np, flat, counts, schedule, tracker)
    return dict(zip(edge_list, colors))


def proper_edge_schedule(
    graph: Graph,
    edge_set: Iterable[int],
    tracker: Optional[RoundTracker] = None,
    scan_path: str = "auto",
) -> Dict[int, int]:
    """A proper O(d̄²)-coloring of the edges in ``edge_set``, usable as a greedy schedule.

    ``d̄`` is the maximum edge degree *within* ``edge_set``.  The schedule
    is computed by running Linial's algorithm on the line graph of the
    subgraph induced by ``edge_set`` (O(log* n) charged rounds).
    ``scan_path`` selects the reduction-step engine exactly like the
    orientation knob (``"auto"`` / ``"numpy"`` / ``"python"``); both
    engines produce bit-identical schedules.
    """
    edge_list = sorted(set(edge_set))
    if not edge_list:
        return {}
    if len(edge_list) == 1:
        # One edge: its line graph is a single node with no neighbors, so
        # every reduction step picks evaluation point 0 and the new color
        # is f_c(0) = c mod q.
        e = edge_list[0]
        u, v = graph.edge_endpoints(e)
        a = graph.node_id(u)
        b = graph.node_id(v)
        if a > b:
            a, b = b, a
        color = a * (max(a, b) + 1) + b
        for q, _d in reduction_schedule(color + 1, 1):
            color %= q
            if tracker is not None:
                tracker.charge(1, "linial")
        return {e: color}
    # A reduction step sweeps both endpoint rows of every position, so
    # the per-step element count is ~2m, not m — the measured numpy
    # crossover sits near 64 edges, half the shared threshold.
    if resolve_use_numpy(scan_path, 2 * len(edge_list)) and hasattr(
        graph, "endpoint_arrays_np"
    ):
        # Vectorized setup + engine: the per-part incident maps and row
        # building collapse to array passes (see _schedule_setup_numpy);
        # ``None`` means a headroom guard tripped — fall through to the
        # python setup below.
        vectorized = _schedule_setup_numpy(graph, edge_list, tracker)
        if vectorized is not None:
            return vectorized
    # Run Linial on the line graph of the edge subset without
    # materializing it: line node ``i`` is ``edge_list[i]``; its
    # identifier is the edge identifier the induced subgraph would
    # assign (endpoint-id pair over the subset's id base); its neighbors
    # are the other positions sharing an endpoint — read off the per-node
    # position rows, so neither the line edges nor a Graph are built.
    all_u, all_v = graph.endpoint_arrays()
    endpoints = [(all_u[e], all_v[e]) for e in edge_list]
    incident: Dict[int, List[int]] = {}
    for position, (u, v) in enumerate(endpoints):
        incident.setdefault(u, []).append(position)
        incident.setdefault(v, []).append(position)
    node_ids = graph.node_ids
    id_base = max(node_ids[v] for v in incident) + 1
    colors: List[int] = []
    for u, v in endpoints:
        a = node_ids[u]
        b = node_ids[v]
        if a > b:
            a, b = b, a
        colors.append(a * id_base + b)
    space = max(colors) + 1
    degree_bound = 0
    for u, v in endpoints:
        d = len(incident[u]) + len(incident[v]) - 2
        if d > degree_bound:
            degree_bound = d
    schedule = reduction_schedule(space, max(1, degree_bound))
    if not schedule:
        # The identifier colors are already minimal: no rows needed.
        return {edge_list[position]: colors[position] for position in range(len(edge_list))}
    # Merged line-graph rows (each position's adjacent positions),
    # built once and reused by every reduction step.
    rows: List[List[int]] = []
    for position, (u, v) in enumerate(endpoints):
        row = [j for j in incident[u] if j != position]
        row.extend(j for j in incident[v] if j != position)
        rows.append(row)
    use_np = resolve_use_numpy(scan_path, len(edge_list))
    if use_np:
        # The vectorized engine works in int64; its largest intermediates
        # are the initial identifier colors and (d+1)·q² (unreduced
        # polynomial sum).  Simulatable instances are orders of magnitude
        # below the bound — this guards the pathological huge-id-space
        # case back onto arbitrary-precision python ints.
        if space >= 2**62 or max((d + 1) * q * q for q, d in schedule) >= 2**62:
            use_np = False
    if use_np:
        colors = _linial_rows_numpy(colors, rows, schedule, tracker)
    else:
        colors = _linial_rows_python(colors, rows, schedule, tracker)
    return {edge_list[position]: colors[position] for position in range(len(edge_list))}

