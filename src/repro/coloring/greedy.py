"""Greedy (list) coloring scheduled by color classes.

Given a proper ``c``-coloring of the conflict graph, the classic greedy
schedule iterates over the ``c`` classes; in iteration ``i`` every vertex
(or edge) of class ``i`` simultaneously picks the smallest color of its
list that no already-colored neighbor uses.  Nodes of the same class are
never adjacent, so the step is conflict-free; each class costs one
communication round.

This is the final step of every recursion in the paper (coloring the
constant-degree or ``β/ε``-degree leftover graphs) and, combined with
Linial's O(Δ̄²)-edge coloring, it is also the classic
O(Δ² + log* n)-round baseline for (2Δ−1)-edge coloring.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.coloring.color_reduction import polynomial_step, reduction_schedule, shared_eval_cache
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


def greedy_vertex_coloring_by_classes(
    graph: Graph,
    schedule: Sequence[int],
    lists: Optional[Sequence[Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    tracker: Optional[RoundTracker] = None,
) -> List[int]:
    """Greedy vertex coloring scheduled by the classes of ``schedule``.

    Args:
        graph: the graph to color.
        schedule: a proper coloring of ``graph`` used as the schedule.
        lists: optional per-node color lists; defaults to
            ``{0, ..., palette_size - 1}``.
        palette_size: size of the default palette; defaults to Δ + 1.
        tracker: one round is charged per non-empty schedule class.

    Returns the chosen colors, indexed by node.
    """
    if palette_size is None:
        palette_size = graph.max_degree + 1
    colors: List[Optional[int]] = [None] * graph.num_nodes
    classes = sorted(set(schedule))
    for cls in classes:
        members = [v for v in graph.nodes() if schedule[v] == cls]
        if not members:
            continue
        for v in members:
            used = {colors[w] for w in graph.neighbors(v) if colors[w] is not None}
            candidates: Iterable[int] = lists[v] if lists is not None else range(palette_size)
            choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"node {v} has no available color; its list/palette is too small")
            colors[v] = choice
        if tracker is not None:
            tracker.charge(1, "greedy-classes")
    return [c if c is not None else 0 for c in colors]


def greedy_edge_coloring_by_classes(
    graph: Graph,
    schedule: Dict[int, int],
    lists: Optional[Dict[int, Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    edge_set: Optional[Set[int]] = None,
    existing_colors: Optional[Dict[int, int]] = None,
    tracker: Optional[RoundTracker] = None,
) -> Dict[int, int]:
    """Greedy list edge coloring scheduled by the classes of ``schedule``.

    Only the edges in ``edge_set`` (default: all edges present in
    ``schedule``) are colored.  ``existing_colors`` are colors of adjacent
    edges colored by earlier stages; they are treated as occupied but are
    not modified.

    Args:
        graph: the host graph (edges are referenced by index).
        schedule: a proper edge coloring of the edges to color (no two
            adjacent edges of ``edge_set`` may share a schedule class).
        lists: optional per-edge color lists; default palette is
            ``{0, ..., palette_size - 1}`` with ``palette_size`` defaulting
            to ``2Δ − 1``.
        tracker: one round is charged per non-empty schedule class.

    Returns the new colors, keyed by edge index.
    """
    targets = set(schedule.keys()) if edge_set is None else set(edge_set)
    if palette_size is None:
        palette_size = max(1, 2 * graph.max_degree - 1)
    colored: Dict[int, int] = dict(existing_colors) if existing_colors else {}
    result: Dict[int, int] = {}
    # Group the targets by schedule class in one pass (the per-class
    # choices are simultaneous, so the order within a class is free).
    by_class: Dict[int, List[int]] = {}
    for e in sorted(targets):
        by_class.setdefault(schedule[e], []).append(e)
    edge_u, edge_v = graph.endpoint_arrays()
    # Two equivalent availability strategies: scan the adjacent-edge row
    # per query (cheap for few targets), or maintain per-node used-color
    # sets (cheap when the targets outnumber the pre-colored edges).
    # The sets only track color *presence*, so they cannot express a
    # target edge being re-colored over an existing entry — if any
    # target is already colored, stay on the (always exact) scan path.
    offsets, flat = graph.edge_adjacency_csr()
    use_node_sets = len(targets) * 4 > len(colored) and not any(
        e in colored for e in targets
    )
    if use_node_sets:
        used_at: List[set] = [set() for _ in range(graph.num_nodes)]
        for colored_edge, color in colored.items():
            used_at[edge_u[colored_edge]].add(color)
            used_at[edge_v[colored_edge]].add(color)
    for cls in sorted(by_class):
        members = by_class[cls]
        round_choices: Dict[int, int] = {}
        for e in members:
            candidates: Iterable[int] = lists[e] if lists is not None else range(palette_size)
            if use_node_sets:
                used_u = used_at[edge_u[e]]
                used_v = used_at[edge_v[e]]
                choice = next(
                    (c for c in candidates if c not in used_u and c not in used_v), None
                )
            else:
                used = {
                    colored[f]
                    for f in flat[offsets[e] : offsets[e + 1]]
                    if f in colored
                }
                choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"edge {e} has no available color; its list/palette is too small")
            round_choices[e] = choice
        for e, c in round_choices.items():
            colored[e] = c
            result[e] = c
            if use_node_sets:
                used_at[edge_u[e]].add(c)
                used_at[edge_v[e]].add(c)
        if tracker is not None:
            tracker.charge(1, "greedy-edge-classes")
    return result


def proper_edge_schedule(
    graph: Graph,
    edge_set: Iterable[int],
    tracker: Optional[RoundTracker] = None,
) -> Dict[int, int]:
    """A proper O(d̄²)-coloring of the edges in ``edge_set``, usable as a greedy schedule.

    ``d̄`` is the maximum edge degree *within* ``edge_set``.  The schedule
    is computed by running Linial's algorithm on the line graph of the
    subgraph induced by ``edge_set`` (O(log* n) charged rounds).
    """
    edge_list = sorted(set(edge_set))
    if not edge_list:
        return {}
    if len(edge_list) == 1:
        # One edge: its line graph is a single node with no neighbors, so
        # every reduction step picks evaluation point 0 and the new color
        # is f_c(0) = c mod q.
        e = edge_list[0]
        u, v = graph.edge_endpoints(e)
        a = graph.node_id(u)
        b = graph.node_id(v)
        if a > b:
            a, b = b, a
        color = a * (max(a, b) + 1) + b
        for q, _d in reduction_schedule(color + 1, 1):
            color %= q
            if tracker is not None:
                tracker.charge(1, "linial")
        return {e: color}
    # Run Linial on the line graph of the edge subset without
    # materializing it: line node ``i`` is ``edge_list[i]``; its
    # identifier is the edge identifier the induced subgraph would
    # assign (endpoint-id pair over the subset's id base); its neighbors
    # are the other positions sharing an endpoint — read off the per-node
    # position rows, so neither the line edges nor a Graph are built.
    all_u, all_v = graph.endpoint_arrays()
    endpoints = [(all_u[e], all_v[e]) for e in edge_list]
    incident: Dict[int, List[int]] = {}
    for position, (u, v) in enumerate(endpoints):
        incident.setdefault(u, []).append(position)
        incident.setdefault(v, []).append(position)
    node_ids = graph.node_ids
    id_base = max(node_ids[v] for v in incident) + 1
    colors: List[int] = []
    for u, v in endpoints:
        a = node_ids[u]
        b = node_ids[v]
        if a > b:
            a, b = b, a
        colors.append(a * id_base + b)
    space = max(colors) + 1
    degree_bound = max(
        len(incident[u]) + len(incident[v]) - 2 for u, v in endpoints
    )
    # Merged line-graph rows (each position's adjacent positions),
    # built once and reused by every reduction step.
    rows: List[List[int]] = []
    for position, (u, v) in enumerate(endpoints):
        row = [j for j in incident[u] if j != position]
        row.extend(j for j in incident[v] if j != position)
        rows.append(row)
    for q, d in reduction_schedule(space, max(1, degree_bound)):
        cache = shared_eval_cache(q, d)
        new_colors: List[int] = []
        for position, row in enumerate(rows):
            new_colors.append(
                polynomial_step(colors[position], [colors[j] for j in row], q, d, cache)
            )
        colors = new_colors
        if tracker is not None:
            tracker.charge(1, "linial")
    return {edge_list[position]: colors[position] for position in range(len(edge_list))}

