"""Greedy (list) coloring scheduled by color classes.

Given a proper ``c``-coloring of the conflict graph, the classic greedy
schedule iterates over the ``c`` classes; in iteration ``i`` every vertex
(or edge) of class ``i`` simultaneously picks the smallest color of its
list that no already-colored neighbor uses.  Nodes of the same class are
never adjacent, so the step is conflict-free; each class costs one
communication round.

This is the final step of every recursion in the paper (coloring the
constant-degree or ``β/ε``-degree leftover graphs) and, combined with
Linial's O(Δ̄²)-edge coloring, it is also the classic
O(Δ² + log* n)-round baseline for (2Δ−1)-edge coloring.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.coloring.linial import linial_vertex_coloring
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


def greedy_vertex_coloring_by_classes(
    graph: Graph,
    schedule: Sequence[int],
    lists: Optional[Sequence[Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    tracker: Optional[RoundTracker] = None,
) -> List[int]:
    """Greedy vertex coloring scheduled by the classes of ``schedule``.

    Args:
        graph: the graph to color.
        schedule: a proper coloring of ``graph`` used as the schedule.
        lists: optional per-node color lists; defaults to
            ``{0, ..., palette_size - 1}``.
        palette_size: size of the default palette; defaults to Δ + 1.
        tracker: one round is charged per non-empty schedule class.

    Returns the chosen colors, indexed by node.
    """
    if palette_size is None:
        palette_size = graph.max_degree + 1
    colors: List[Optional[int]] = [None] * graph.num_nodes
    classes = sorted(set(schedule))
    for cls in classes:
        members = [v for v in graph.nodes() if schedule[v] == cls]
        if not members:
            continue
        for v in members:
            used = {colors[w] for w in graph.neighbors(v) if colors[w] is not None}
            candidates: Iterable[int] = lists[v] if lists is not None else range(palette_size)
            choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"node {v} has no available color; its list/palette is too small")
            colors[v] = choice
        if tracker is not None:
            tracker.charge(1, "greedy-classes")
    return [c if c is not None else 0 for c in colors]


def greedy_edge_coloring_by_classes(
    graph: Graph,
    schedule: Dict[int, int],
    lists: Optional[Dict[int, Sequence[int]]] = None,
    palette_size: Optional[int] = None,
    edge_set: Optional[Set[int]] = None,
    existing_colors: Optional[Dict[int, int]] = None,
    tracker: Optional[RoundTracker] = None,
) -> Dict[int, int]:
    """Greedy list edge coloring scheduled by the classes of ``schedule``.

    Only the edges in ``edge_set`` (default: all edges present in
    ``schedule``) are colored.  ``existing_colors`` are colors of adjacent
    edges colored by earlier stages; they are treated as occupied but are
    not modified.

    Args:
        graph: the host graph (edges are referenced by index).
        schedule: a proper edge coloring of the edges to color (no two
            adjacent edges of ``edge_set`` may share a schedule class).
        lists: optional per-edge color lists; default palette is
            ``{0, ..., palette_size - 1}`` with ``palette_size`` defaulting
            to ``2Δ − 1``.
        tracker: one round is charged per non-empty schedule class.

    Returns the new colors, keyed by edge index.
    """
    targets = set(schedule.keys()) if edge_set is None else set(edge_set)
    if palette_size is None:
        palette_size = max(1, 2 * graph.max_degree - 1)
    colored: Dict[int, int] = dict(existing_colors) if existing_colors else {}
    result: Dict[int, int] = {}
    classes = sorted({schedule[e] for e in targets})
    for cls in classes:
        members = [e for e in targets if schedule[e] == cls]
        if not members:
            continue
        round_choices: Dict[int, int] = {}
        for e in members:
            used = {colored[f] for f in graph.adjacent_edges(e) if f in colored}
            candidates: Iterable[int] = lists[e] if lists is not None else range(palette_size)
            choice = next((c for c in candidates if c not in used), None)
            if choice is None:
                raise ValueError(f"edge {e} has no available color; its list/palette is too small")
            round_choices[e] = choice
        for e, c in round_choices.items():
            colored[e] = c
            result[e] = c
        if tracker is not None:
            tracker.charge(1, "greedy-edge-classes")
    return result


def proper_edge_schedule(
    graph: Graph,
    edge_set: Iterable[int],
    tracker: Optional[RoundTracker] = None,
) -> Dict[int, int]:
    """A proper O(d̄²)-coloring of the edges in ``edge_set``, usable as a greedy schedule.

    ``d̄`` is the maximum edge degree *within* ``edge_set``.  The schedule
    is computed by running Linial's algorithm on the line graph of the
    subgraph induced by ``edge_set`` (O(log* n) charged rounds).
    """
    edge_list = sorted(set(edge_set))
    if not edge_list:
        return {}
    endpoints = [graph.edge_endpoints(e) for e in edge_list]
    nodes_used = sorted({v for pair in endpoints for v in pair})
    node_map = {v: i for i, v in enumerate(nodes_used)}
    subgraph = Graph(
        len(nodes_used),
        [(node_map[u], node_map[v]) for u, v in endpoints],
        node_ids=[graph.node_id(v) for v in nodes_used],
    )
    sub_colors, _num = _edge_schedule_colors(subgraph, tracker)
    # Sub-edge i corresponds to edge_list position: map through endpoints.
    schedule: Dict[int, int] = {}
    for original, (u, v) in zip(edge_list, endpoints):
        sub_edge = subgraph.edge_index(node_map[u], node_map[v])
        schedule[original] = sub_colors[sub_edge]
    return schedule


def _edge_schedule_colors(subgraph: Graph, tracker: Optional[RoundTracker]) -> Dict[int, int]:
    """Linial edge coloring of a subgraph, tolerant of edgeless inputs."""
    if subgraph.num_edges == 0:
        return {}, 1
    line = subgraph.line_graph()
    colors, num_colors = linial_vertex_coloring(line, tracker=tracker)
    return {e: colors[e] for e in subgraph.edges()}, num_colors
