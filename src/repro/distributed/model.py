"""The LOCAL and CONGEST models (Section 2 of the paper).

Both models are synchronous message-passing models on the communication
graph.  LOCAL places no bound on message sizes; CONGEST restricts every
message to O(log n) bits.  The simulator treats the model as metadata:
algorithms run identically, but in CONGEST mode every message is audited
against the bit budget returned by :func:`congest_bit_budget`.
"""

from __future__ import annotations

import enum
import math


class Model(enum.Enum):
    """The distributed computing model an algorithm claims to run in."""

    LOCAL = "LOCAL"
    CONGEST = "CONGEST"


#: Constant factor allowed in the O(log n) CONGEST message bound.  A
#: message may carry a constant number of identifiers/counters, each of
#: O(log n) bits; the auditors use ``factor * ceil(log2 n)`` bits.
DEFAULT_CONGEST_FACTOR = 8


def congest_bit_budget(num_nodes: int, factor: int = DEFAULT_CONGEST_FACTOR) -> int:
    """The per-message bit budget of the CONGEST model for an n-node network."""
    if num_nodes <= 1:
        return factor
    return factor * max(1, math.ceil(math.log2(num_nodes)))
