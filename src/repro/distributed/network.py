"""Synchronous message-passing simulator.

Implements the execution environment of the LOCAL and CONGEST models
(Section 2 of the paper): computation proceeds in synchronous rounds; in
every round each node sends (possibly different) messages to its
neighbors, receives the neighbors' messages, and updates its state.  The
simulator drives a :class:`repro.distributed.algorithms.NodeAlgorithm`
on every node of a :class:`repro.graphs.core.Graph` and reports the
number of rounds, the number of messages and — in CONGEST mode — the
maximum message size observed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.algorithms import NodeAlgorithm, NodeContext
from repro.distributed.messages import CongestAuditor
from repro.distributed.metrics import ExecutionMetrics
from repro.distributed.model import Model
from repro.graphs.core import Graph


class SynchronousNetwork:
    """A network of nodes executing one algorithm in synchronous rounds."""

    def __init__(
        self,
        graph: Graph,
        model: Model = Model.LOCAL,
        congest_factor: int = 8,
        global_knowledge: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._graph = graph
        self._model = model
        self._auditor = (
            CongestAuditor(num_nodes=graph.num_nodes, factor=congest_factor)
            if model is Model.CONGEST
            else None
        )
        base_globals: Dict[str, Any] = {
            "num_nodes": graph.num_nodes,
            "max_degree": graph.max_degree,
        }
        if global_knowledge:
            base_globals.update(global_knowledge)
        self._contexts: List[NodeContext] = []
        for v in graph.nodes():
            neighbors = graph.neighbors(v)
            self._contexts.append(
                NodeContext(
                    node=v,
                    node_id=graph.node_id(v),
                    degree=len(neighbors),
                    neighbor_ids=[graph.node_id(w) for w in neighbors],
                    globals=dict(base_globals),
                )
            )
        # Port maps: port p of node v leads to neighbor graph.neighbors(v)[p].
        self._ports: List[List[int]] = [graph.neighbors(v) for v in graph.nodes()]
        self._reverse_port: Dict[Tuple[int, int], int] = {}
        for v in graph.nodes():
            for p, w in enumerate(self._ports[v]):
                self._reverse_port[(v, w)] = p

    @property
    def graph(self) -> Graph:
        """The communication graph."""
        return self._graph

    @property
    def model(self) -> Model:
        """The model the network simulates."""
        return self._model

    def run(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
    ) -> Tuple[List[Any], ExecutionMetrics]:
        """Run ``algorithm`` on every node until all nodes are finished.

        Returns the per-node outputs and the execution metrics.  Raises
        ``RuntimeError`` if the algorithm does not terminate within
        ``max_rounds`` rounds.

        The simulator tracks the set of unfinished nodes instead of
        re-querying every node each round: a node reporting finished is
        assumed to stay finished (termination is monotone in the LOCAL /
        CONGEST models), it no longer sends, and its ``receive`` hook only
        runs in rounds where messages actually arrive for it.  Inboxes
        are allocated lazily — only nodes that receive something this
        round get one.
        """
        contexts = self._contexts
        states = [algorithm.initialize(ctx) for ctx in contexts]
        metrics = ExecutionMetrics(
            congest_budget_bits=self._auditor.budget_bits if self._auditor else None
        )
        ports = self._ports
        reverse_port = self._reverse_port
        unfinished = [
            v for v, ctx in enumerate(contexts) if not algorithm.finished(ctx, states[v])
        ]
        rounds = 0
        while unfinished:
            if rounds >= max_rounds:
                raise RuntimeError(f"algorithm did not terminate within {max_rounds} rounds")
            inboxes: Dict[int, Dict[int, Any]] = {}
            for v in unfinished:
                outbox = algorithm.send(contexts[v], states[v], rounds)
                for port, payload in outbox.items():
                    if not (0 <= port < len(ports[v])):
                        raise ValueError(f"node {v} sent on invalid port {port}")
                    if payload is None:
                        continue
                    target = ports[v][port]
                    back_port = reverse_port[(target, v)]
                    inbox = inboxes.get(target)
                    if inbox is None:
                        inbox = inboxes[target] = {}
                    inbox[back_port] = payload
                    metrics.messages += 1
                    if self._auditor is not None:
                        bits = self._auditor.record(payload)
                        metrics.max_message_bits = max(metrics.max_message_bits, bits)
            unfinished_set = set(unfinished)
            for v in unfinished:
                inbox = inboxes.get(v)
                if inbox is None:
                    inbox = {}  # fresh per node: receive() may treat it as scratch
                algorithm.receive(contexts[v], states[v], inbox, rounds)
            # Finished nodes still observe late messages addressed to them.
            for v in sorted(inboxes):
                if v not in unfinished_set:
                    algorithm.receive(contexts[v], states[v], inboxes[v], rounds)
            unfinished = [
                v for v in unfinished if not algorithm.finished(contexts[v], states[v])
            ]
            rounds += 1
        metrics.rounds = rounds
        if self._auditor is not None:
            metrics.congest_violations = len(self._auditor.violations)
        outputs = [
            algorithm.output(ctx, state) for ctx, state in zip(contexts, states)
        ]
        return outputs, metrics
