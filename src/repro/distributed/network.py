"""Synchronous message-passing simulator.

Implements the execution environment of the LOCAL and CONGEST models
(Section 2 of the paper): computation proceeds in synchronous rounds; in
every round each node sends (possibly different) messages to its
neighbors, receives the neighbors' messages, and updates its state.  The
simulator drives a :class:`repro.distributed.algorithms.NodeAlgorithm`
on every node of a :class:`repro.graphs.core.Graph` and reports the
number of rounds, the number of messages and — in CONGEST mode — the
maximum message size observed.

The message plane is array-batched.  A *slot* is a position in the host
graph's flat CSR adjacency array (slot ``xadj[v] + p`` is port ``p`` of
node ``v``); one flat per-round buffer indexed by slots replaces the
per-message dicts of the naive implementation.  Routing a message is two
array reads — the neighbor from the adjacency array, the destination
slot from the precomputed reverse-slot array
(:meth:`repro.graphs.core.Graph.reverse_slot_csr`) — and a single write;
no ``(v, w)`` dict lookups, no per-node inbox dicts.  ``receive()`` is
handed a pooled :class:`PortInbox` view of the node's buffer row instead
of a fresh dict, and CONGEST auditing sizes each round's payloads in one
batched call (:meth:`repro.distributed.messages.CongestAuditor.
record_batch`) instead of per message.  All observable behaviour —
delivery order, metrics, violation lists — is identical to the
dict-based plane.

Message-size accounting semantics (CONGEST mode): every non-``None``
payload delivered in a round is sized by
:func:`repro.distributed.messages.message_size_bits` and checked against
``congest_factor * ceil(log2 n)`` bits; ``metrics.max_message_bits``
holds the largest observed size and ``metrics.congest_violations``
counts the payloads over budget.  LOCAL runs skip the audit entirely
(``congest_budget_bits`` is ``None``).
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.distributed.algorithms import NodeAlgorithm, NodeContext
from repro.distributed.messages import CongestAuditor
from repro.distributed.metrics import ExecutionMetrics
from repro.distributed.model import Model
from repro.graphs.core import Graph


class PortInbox:
    """A read-only, port-keyed view of one node's received messages.

    Duck-type compatible with the ``Dict[int, Any]`` inbox the simulator
    used to hand to ``receive()``: supports ``in``, ``len``, ``bool``,
    iteration (ascending ports), indexing, ``get``, ``keys``, ``values``
    and ``items``.  The simulator pools **one** instance per run and
    rebinds it to each node in turn, so the view is only valid for the
    duration of the ``receive()`` call it was passed to — algorithms that
    need to keep the messages must copy them out (:meth:`to_dict`).

    Iteration order is ascending by port, which matches the insertion
    order of the old per-node dicts exactly: adjacency rows are sorted by
    neighbor and senders are processed in ascending node order, so
    messages always arrived in ascending back-port order.
    """

    __slots__ = ("_buf", "_start", "_degree")

    def __init__(self, buf: List[Any]) -> None:
        self._buf = buf
        self._start = 0
        self._degree = 0

    def _bind(self, start: int, degree: int) -> "PortInbox":
        """Point the view at one node's buffer row (simulator internal)."""
        self._start = start
        self._degree = degree
        return self

    def __getitem__(self, port: int) -> Any:
        if isinstance(port, int) and 0 <= port < self._degree:
            payload = self._buf[self._start + port]
            if payload is not None:
                return payload
        raise KeyError(port)

    def get(self, port: int, default: Any = None) -> Any:
        if isinstance(port, int) and 0 <= port < self._degree:
            payload = self._buf[self._start + port]
            if payload is not None:
                return payload
        return default

    def __contains__(self, port: object) -> bool:
        return (
            isinstance(port, int)
            and 0 <= port < self._degree
            and self._buf[self._start + port] is not None
        )

    def __iter__(self) -> Iterator[int]:
        buf = self._buf
        start = self._start
        for port in range(self._degree):
            if buf[start + port] is not None:
                yield port

    def __len__(self) -> int:
        buf = self._buf
        start = self._start
        return sum(1 for i in range(start, start + self._degree) if buf[i] is not None)

    def __bool__(self) -> bool:
        buf = self._buf
        start = self._start
        return any(buf[i] is not None for i in range(start, start + self._degree))

    def keys(self) -> List[int]:
        """Ports that carry a message this round, ascending."""
        buf = self._buf
        start = self._start
        return [p for p in range(self._degree) if buf[start + p] is not None]

    def values(self) -> List[Any]:
        """Payloads in ascending port order."""
        buf = self._buf
        start = self._start
        return [x for x in buf[start : start + self._degree] if x is not None]

    def items(self) -> List[Tuple[int, Any]]:
        """``(port, payload)`` pairs in ascending port order."""
        buf = self._buf
        start = self._start
        return [
            (p, buf[start + p])
            for p in range(self._degree)
            if buf[start + p] is not None
        ]

    def to_dict(self) -> Dict[int, Any]:
        """A snapshot dict that stays valid after ``receive()`` returns."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PortInbox({self.to_dict()!r})"


class SynchronousNetwork:
    """A network of nodes executing one algorithm in synchronous rounds."""

    def __init__(
        self,
        graph: Graph,
        model: Model = Model.LOCAL,
        congest_factor: int = 8,
        global_knowledge: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Build a network over ``graph``.

        Args:
            graph: the communication graph.
            model: LOCAL (unbounded messages) or CONGEST.
            congest_factor: constant factor of the CONGEST budget — every
                message may carry up to ``congest_factor * ceil(log2 n)``
                bits before it is counted as a violation.  Ignored in
                LOCAL mode.
            global_knowledge: extra entries for every node's
                ``ctx.globals`` (``num_nodes`` and ``max_degree`` are
                always present).
        """
        self._graph = graph
        self._model = model
        self._auditor = (
            CongestAuditor(num_nodes=graph.num_nodes, factor=congest_factor)
            if model is Model.CONGEST
            else None
        )
        base_globals: Dict[str, Any] = {
            "num_nodes": graph.num_nodes,
            "max_degree": graph.max_degree,
        }
        if global_knowledge:
            base_globals.update(global_knowledge)
        self._contexts: List[NodeContext] = []
        for v in graph.nodes():
            neighbors = graph.neighbors(v)
            self._contexts.append(
                NodeContext(
                    node=v,
                    node_id=graph.node_id(v),
                    degree=len(neighbors),
                    neighbor_ids=[graph.node_id(w) for w in neighbors],
                    globals=dict(base_globals),
                )
            )
        # Port maps: port p of node v leads to neighbor adj[xadj[v] + p];
        # the reverse-slot array routes a message straight to its
        # destination slot in the flat inbox buffer.  All three arrays are
        # shared with (and lazily built by) the graph.
        self._xadj, self._adj = graph.adjacency_csr()
        self._rev_slot = graph.reverse_slot_csr()

    @property
    def graph(self) -> Graph:
        """The communication graph."""
        return self._graph

    @property
    def model(self) -> Model:
        """The model the network simulates."""
        return self._model

    def _coerce_port(self, v: int, port: Any, rounds: int) -> int:
        """Validate a non-``int``-typed outbox key (slow path).

        Index-like values (e.g. numpy integers) are converted; anything
        else — floats, strings, tuples — is rejected with a clear error
        naming the node and round instead of surfacing as a confusing
        ``TypeError`` from a downstream comparison or list index.
        """
        try:
            return operator.index(port)
        except TypeError:
            raise TypeError(
                f"node {self._contexts[v].node_id} keyed an outbox entry with "
                f"{port!r} in round {rounds}: ports must be integers"
            ) from None

    def run(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
    ) -> Tuple[List[Any], ExecutionMetrics]:
        """Run ``algorithm`` on every node until all nodes are finished.

        Returns the per-node outputs and the execution metrics.  Raises
        ``RuntimeError`` if the algorithm does not terminate within
        ``max_rounds`` rounds (an algorithm that finishes in exactly
        ``max_rounds`` rounds terminates normally).

        The simulator tracks the set of unfinished nodes instead of
        re-querying every node each round: a node reporting finished is
        assumed to stay finished (termination is monotone in the LOCAL /
        CONGEST models), it no longer sends, and its ``receive`` hook only
        runs in rounds where messages actually arrive for it.

        Messages move through a flat slot-indexed buffer over the CSR
        adjacency (see the module docstring); ``receive()`` gets a pooled
        :class:`PortInbox` view of the node's row, valid only for that
        call.  Only the slots written this round are cleared afterwards,
        so a round costs O(messages), not O(m).
        """
        contexts = self._contexts
        states = [algorithm.initialize(ctx) for ctx in contexts]
        auditor = self._auditor
        metrics = ExecutionMetrics(
            congest_budget_bits=auditor.budget_bits if auditor else None
        )
        xadj = self._xadj
        adj = self._adj
        rev_slot = self._rev_slot
        n = self._graph.num_nodes

        # The message plane: one payload slot per (node, port) direction,
        # plus the bookkeeping to clear and deliver in O(messages).
        inbox_buf: List[Any] = [None] * len(adj)
        touched: List[int] = []  # slots written this round
        receivers: List[int] = []  # nodes with >= 1 message this round
        received_round = [-1] * n  # round stamp of the last message per node
        inbox = PortInbox(inbox_buf)
        batch: List[Any] = []  # this round's payloads for the CONGEST audit

        unfinished = [
            v for v, ctx in enumerate(contexts) if not algorithm.finished(ctx, states[v])
        ]
        rounds = 0
        while unfinished:
            if rounds >= max_rounds:
                raise RuntimeError(f"algorithm did not terminate within {max_rounds} rounds")
            sent = 0
            for v in unfinished:
                outbox = algorithm.send(contexts[v], states[v], rounds)
                if not outbox:
                    continue
                base = xadj[v]
                degree = xadj[v + 1] - base
                for port, payload in outbox.items():
                    if type(port) is not int:
                        port = self._coerce_port(v, port, rounds)
                    if port < 0 or port >= degree:
                        raise ValueError(
                            f"node {contexts[v].node_id} sent on invalid port "
                            f"{port} in round {rounds}: valid ports are "
                            f"0..{degree - 1}"
                        )
                    if payload is None:
                        continue
                    slot = base + port
                    target = adj[slot]
                    dest = rev_slot[slot]
                    inbox_buf[dest] = payload
                    touched.append(dest)
                    if received_round[target] != rounds:
                        received_round[target] = rounds
                        receivers.append(target)
                    sent += 1
                    if auditor is not None:
                        batch.append(payload)
            metrics.messages += sent
            if batch:
                batch_max = auditor.record_batch(batch)
                if batch_max > metrics.max_message_bits:
                    metrics.max_message_bits = batch_max
                batch.clear()
            for v in unfinished:
                algorithm.receive(
                    contexts[v],
                    states[v],
                    inbox._bind(xadj[v], xadj[v + 1] - xadj[v]),
                    rounds,
                )
            if receivers:
                # Finished nodes still observe late messages addressed to them.
                unfinished_set = set(unfinished)
                for v in sorted(receivers):
                    if v not in unfinished_set:
                        algorithm.receive(
                            contexts[v],
                            states[v],
                            inbox._bind(xadj[v], xadj[v + 1] - xadj[v]),
                            rounds,
                        )
                receivers.clear()
            for slot in touched:
                inbox_buf[slot] = None
            touched.clear()
            unfinished = [
                v for v in unfinished if not algorithm.finished(contexts[v], states[v])
            ]
            rounds += 1
        metrics.rounds = rounds
        if auditor is not None:
            metrics.congest_violations = len(auditor.violations)
        outputs = [
            algorithm.output(ctx, state) for ctx, state in zip(contexts, states)
        ]
        return outputs, metrics
