"""Synchronous message-passing simulator.

Implements the execution environment of the LOCAL and CONGEST models
(Section 2 of the paper): computation proceeds in synchronous rounds; in
every round each node sends (possibly different) messages to its
neighbors, receives the neighbors' messages, and updates its state.  The
simulator drives a :class:`repro.distributed.algorithms.NodeAlgorithm`
on every node of a :class:`repro.graphs.core.Graph` and reports the
number of rounds, the number of messages and — in CONGEST mode — the
maximum message size observed.

The message plane is array-batched.  A *slot* is a position in the host
graph's flat CSR adjacency array (slot ``xadj[v] + p`` is port ``p`` of
node ``v``); one flat per-round buffer indexed by slots replaces the
per-message dicts of the naive implementation.  Routing a message is two
array reads — the neighbor from the adjacency array, the destination
slot from the precomputed reverse-slot array
(:meth:`repro.graphs.core.Graph.reverse_slot_csr`) — and a single write;
no ``(v, w)`` dict lookups, no per-node inbox dicts.  ``receive()`` is
handed a pooled :class:`PortInbox` view of the node's buffer row instead
of a fresh dict.

Two *send planes* feed the buffer (the ``send_plane`` knob of
:meth:`SynchronousNetwork.run`):

* the **dict plane** — the compatibility path: every round each node's
  ``send()`` returns a per-port dict that the simulator routes;
* the **batched plane** — each node's ``send_batch()`` receives a pooled
  :class:`OutboxWriter` bound to the node's slots and writes payloads
  straight into the destination slots of the round buffer.  A broadcast
  is one tight loop over the node's reverse-slot row, and its CONGEST
  audit is a single ``(payload, count)`` group
  (:meth:`repro.distributed.messages.CongestAuditor.
  record_batch_grouped`) instead of ``degree`` repeated payloads.

Two *receive planes* drain the buffer (the ``receive_plane`` knob):

* the **dict plane** — the compatibility path: every round each
  unfinished node's ``receive()`` is handed a pooled :class:`PortInbox`
  view of its buffer row;
* the **batched plane** — the simulator calls
  ``algorithm.receive_batch()`` **once per round** with a phase-level
  :class:`RoundInbox` view over the whole round's flat buffer and the
  list of unfinished nodes.  A native implementation (e.g.
  :class:`repro.coloring.linial.LinialNodeAlgorithm`) processes all
  incoming slots of the round as one vectorized sweep instead of ``n``
  python dispatches; the default implementation bridges to the per-node
  ``receive()`` via pooled views, so any algorithm runs on either plane.

Batched-receive contract (*slot ownership*, ``None`` semantics, audit
equivalence):

* slot ``xadj[v] + p`` is owned by (node ``v``, port ``p``) for the
  duration of one round: it either holds the payload delivered to that
  port this round or ``None``.  ``None`` slots are *absent* messages —
  they are never surfaced by :class:`PortInbox`, and batched
  implementations must skip them exactly like the dict plane does
  (a ``None`` payload is never sent, delivered, counted or audited);
* the :class:`RoundInbox` (and every view derived from it) is only
  valid during the ``receive_batch`` call — the simulator clears the
  written slots right after the receive phase, so payloads that must
  outlive the round have to be copied out;
* late delivery to *finished* nodes always runs through the per-node
  ``receive()`` hook, on both planes, after the phase-level call — the
  unfinished set handed to ``receive_batch`` never contains a finished
  node;
* CONGEST auditing happens on the send side and is therefore untouched
  by the receive plane: message counts, ``max_message_bits`` and the
  ordered violation list are arithmetically identical across all four
  send × receive plane combinations.

All observable behaviour — delivery order, metrics, violation lists — is
identical across the planes (and to the historical per-message
implementation); the differential matrix in
``tests/test_differential_paths.py`` pins the equivalence.

Fault model: :meth:`SynchronousNetwork.run` optionally applies a
deterministic, seed-derived :class:`repro.distributed.faults.FaultPlan`
to the flat slot buffer between the send phase (and its audit) and the
receive phase — message drops, delays, duplicates and node crash-stops
that are bit-identical across all four plane combinations.  See
:mod:`repro.distributed.faults` for the full fault model and
determinism contract; without a plan the simulator stays perfectly
reliable and pays nothing.

Message-size accounting semantics (CONGEST mode): every non-``None``
payload delivered in a round is sized by
:func:`repro.distributed.messages.message_size_bits` and checked against
``congest_factor * ceil(log2 n)`` bits; ``metrics.max_message_bits``
holds the largest observed size and ``metrics.congest_violations``
counts the payloads over budget.  LOCAL runs skip the audit entirely
(``congest_budget_bits`` is ``None``).  ``None`` payloads are never
sent: they are not delivered, not counted in ``metrics.messages`` and
not audited, on either plane.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.distributed.algorithms import NodeAlgorithm, NodeContext
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.distributed.messages import CongestAuditor
from repro.distributed.metrics import ExecutionMetrics
from repro.distributed.model import Model
from repro.graphs.core import Graph


class PortInbox:
    """A read-only, port-keyed view of one node's received messages.

    Duck-type compatible with the ``Dict[int, Any]`` inbox the simulator
    used to hand to ``receive()``: supports ``in``, ``len``, ``bool``,
    iteration (ascending ports), indexing, ``get``, ``keys``, ``values``
    and ``items``.  The simulator pools **one** instance per run and
    rebinds it to each node in turn, so the view is only valid for the
    duration of the ``receive()`` call it was passed to — algorithms that
    need to keep the messages must copy them out (:meth:`to_dict`).

    Iteration order is ascending by port, which matches the insertion
    order of the old per-node dicts exactly: adjacency rows are sorted by
    neighbor and senders are processed in ascending node order, so
    messages always arrived in ascending back-port order.
    """

    __slots__ = ("_buf", "_start", "_degree")

    def __init__(self, buf: List[Any]) -> None:
        self._buf = buf
        self._start = 0
        self._degree = 0

    def _bind(self, start: int, degree: int) -> "PortInbox":
        """Point the view at one node's buffer row (simulator internal)."""
        self._start = start
        self._degree = degree
        return self

    def __getitem__(self, port: int) -> Any:
        if isinstance(port, int) and 0 <= port < self._degree:
            payload = self._buf[self._start + port]
            if payload is not None:
                return payload
        raise KeyError(port)

    def get(self, port: int, default: Any = None) -> Any:
        if isinstance(port, int) and 0 <= port < self._degree:
            payload = self._buf[self._start + port]
            if payload is not None:
                return payload
        return default

    def __contains__(self, port: object) -> bool:
        return (
            isinstance(port, int)
            and 0 <= port < self._degree
            and self._buf[self._start + port] is not None
        )

    def __iter__(self) -> Iterator[int]:
        buf = self._buf
        start = self._start
        for port in range(self._degree):
            if buf[start + port] is not None:
                yield port

    def __len__(self) -> int:
        buf = self._buf
        start = self._start
        return sum(1 for i in range(start, start + self._degree) if buf[i] is not None)

    def __bool__(self) -> bool:
        buf = self._buf
        start = self._start
        return any(buf[i] is not None for i in range(start, start + self._degree))

    def keys(self) -> List[int]:
        """Ports that carry a message this round, ascending."""
        buf = self._buf
        start = self._start
        return [p for p in range(self._degree) if buf[start + p] is not None]

    def values(self) -> List[Any]:
        """Payloads in ascending port order."""
        buf = self._buf
        start = self._start
        return [x for x in buf[start : start + self._degree] if x is not None]

    def items(self) -> List[Tuple[int, Any]]:
        """``(port, payload)`` pairs in ascending port order."""
        buf = self._buf
        start = self._start
        return [
            (p, buf[start + p])
            for p in range(self._degree)
            if buf[start + p] is not None
        ]

    def to_dict(self) -> Dict[int, Any]:
        """A snapshot dict that stays valid after ``receive()`` returns."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PortInbox({self.to_dict()!r})"


class RoundInbox:
    """A phase-level, slot-indexed view over one round's whole inbox buffer.

    The batched-receive counterpart of :class:`PortInbox`: instead of one
    per-node view per ``receive()`` call, the simulator hands **one**
    instance to ``algorithm.receive_batch()`` per round, covering every
    node's slots at once.  Slot ``xadj[v] + p`` holds the payload
    delivered to port ``p`` of node ``v`` this round, or ``None`` when
    nothing arrived on that port (``None`` is *absence*, never a
    payload — see the module docstring for the full contract).

    Native batched algorithms read :attr:`buffer` / :meth:`slot_bounds`
    directly and sweep all slots as arrays; :meth:`node` returns a pooled
    :class:`PortInbox` bound to one node's row for per-node fallbacks
    (the default ``receive_batch`` bridge uses it).  Like every pooled
    view, the instance is only valid during the ``receive_batch`` call it
    was passed to — the simulator clears the round's slots afterwards.
    """

    __slots__ = ("_buf", "_xadj", "_port_view")

    def __init__(self, buf: List[Any], xadj: Sequence[int]) -> None:
        self._buf = buf
        self._xadj = xadj
        self._port_view = PortInbox(buf)

    @property
    def buffer(self) -> List[Any]:
        """The flat slot-indexed payload buffer (read-only by contract)."""
        return self._buf

    def slot_bounds(self, node: int) -> Tuple[int, int]:
        """The ``[start, end)`` slot range owned by ``node`` this round."""
        return self._xadj[node], self._xadj[node + 1]

    def node(self, node: int) -> PortInbox:
        """A pooled per-node view (valid until the next ``node()`` call)."""
        start = self._xadj[node]
        return self._port_view._bind(start, self._xadj[node + 1] - start)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        filled = sum(1 for x in self._buf if x is not None)
        return f"RoundInbox(slots={len(self._buf)}, filled={filled})"


class OutboxWriter:
    """A write-only, port-keyed view of one node's outgoing slots.

    The batched-send counterpart of :class:`PortInbox`: the simulator
    pools **one** instance per run and rebinds it to each unfinished node
    before calling ``send_batch()``.  Writes go straight to the
    destination slot of the flat round buffer (via the graph's
    reverse-slot array), so sending a message is one list write — no
    per-round dict, no routing pass.

    Contract (see :class:`repro.distributed.algorithms.NodeAlgorithm`):
    the view is only valid during the ``send_batch`` call it was passed
    to; ``None`` payloads are not sent; each port should be written at
    most once per round.  ``writer[port] = payload`` sends on one port;
    :meth:`broadcast` sends the same payload on every port and audits it
    as a single ``(payload, count)`` group — arithmetically identical to
    ``degree`` per-message audits.
    """

    __slots__ = (
        "_buf",
        "_adj",
        "_rev_slot",
        "_touched",
        "_receivers",
        "_groups",
        "_contexts",
        "_base",
        "_end",
        "_node",
        "_round",
        "sent",
    )

    def __init__(
        self,
        buf: List[Any],
        adj: List[int],
        rev_slot: List[int],
        touched: List[int],
        receivers: Optional[set],
        groups: Optional[List[Tuple[Any, int]]],
        contexts: List["NodeContext"],
    ) -> None:
        self._buf = buf
        self._adj = adj
        self._rev_slot = rev_slot
        self._touched = touched
        self._receivers = receivers  # None while no node is finished yet
        self._groups = groups  # None when auditing is off (LOCAL mode)
        self._contexts = contexts  # error messages resolve node ids lazily
        self._base = 0
        self._end = 0
        self._node = 0
        self._round = 0
        self.sent = 0

    def _bind(self, base: int, end: int, node: int, round_index: int) -> "OutboxWriter":
        """Point the view at one node's slot row (simulator internal)."""
        self._base = base
        self._end = end
        self._node = node
        self._round = round_index
        return self

    @property
    def degree(self) -> int:
        """Number of ports of the bound node."""
        return self._end - self._base

    def __setitem__(self, port: Any, payload: Any) -> None:
        """Send ``payload`` on ``port`` (a ``None`` payload sends nothing)."""
        if type(port) is not int:
            try:
                port = operator.index(port)
            except TypeError:
                raise TypeError(
                    f"node {self._contexts[self._node].node_id} keyed an outbox "
                    f"entry with {port!r} in round {self._round}: ports must be "
                    f"integers"
                ) from None
        slot = self._base + port
        if port < 0 or slot >= self._end:
            raise ValueError(
                f"node {self._contexts[self._node].node_id} sent on invalid port "
                f"{port} in round {self._round}: valid ports are "
                f"0..{self._end - self._base - 1}"
            )
        if payload is None:
            return
        dest = self._rev_slot[slot]
        self._buf[dest] = payload
        self._touched.append(dest)
        if self._receivers is not None:
            self._receivers.add(self._adj[slot])
        self.sent += 1
        if self._groups is not None:
            self._groups.append((payload, 1))

    send = __setitem__

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` on every port (no-op for ``None`` or degree 0)."""
        base = self._base
        end = self._end
        if payload is None or base == end:
            return
        buf = self._buf
        row = self._rev_slot[base:end]
        for dest in row:
            buf[dest] = payload
        self._touched.extend(row)
        if self._receivers is not None:
            self._receivers.update(self._adj[base:end])
        self.sent += end - base
        if self._groups is not None:
            self._groups.append((payload, end - base))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OutboxWriter(node={self._node}, ports={self._end - self._base})"


class SynchronousNetwork:
    """A network of nodes executing one algorithm in synchronous rounds."""

    def __init__(
        self,
        graph: Graph,
        model: Model = Model.LOCAL,
        congest_factor: int = 8,
        global_knowledge: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Build a network over ``graph``.

        Args:
            graph: the communication graph.
            model: LOCAL (unbounded messages) or CONGEST.
            congest_factor: constant factor of the CONGEST budget — every
                message may carry up to ``congest_factor * ceil(log2 n)``
                bits before it is counted as a violation.  Ignored in
                LOCAL mode.
            global_knowledge: extra entries for every node's
                ``ctx.globals`` (``num_nodes`` and ``max_degree`` are
                always present).
        """
        self._graph = graph
        self._model = model
        self._auditor = (
            CongestAuditor(num_nodes=graph.num_nodes, factor=congest_factor)
            if model is Model.CONGEST
            else None
        )
        base_globals: Dict[str, Any] = {
            "num_nodes": graph.num_nodes,
            "max_degree": graph.max_degree,
        }
        if global_knowledge:
            base_globals.update(global_knowledge)
        self._contexts: List[NodeContext] = []
        for v in graph.nodes():
            neighbors = graph.neighbors(v)
            self._contexts.append(
                NodeContext(
                    node=v,
                    node_id=graph.node_id(v),
                    degree=len(neighbors),
                    neighbor_ids=[graph.node_id(w) for w in neighbors],
                    globals=dict(base_globals),
                )
            )
        # Port maps: port p of node v leads to neighbor adj[xadj[v] + p];
        # the reverse-slot array routes a message straight to its
        # destination slot in the flat inbox buffer.  All three arrays are
        # shared with (and lazily built by) the graph.
        self._xadj, self._adj = graph.adjacency_csr()
        self._rev_slot = graph.reverse_slot_csr()

    @property
    def graph(self) -> Graph:
        """The communication graph."""
        return self._graph

    @property
    def model(self) -> Model:
        """The model the network simulates."""
        return self._model

    def _coerce_port(self, v: int, port: Any, rounds: int) -> int:
        """Validate a non-``int``-typed outbox key (slow path).

        Index-like values (e.g. numpy integers) are converted; anything
        else — floats, strings, tuples — is rejected with a clear error
        naming the node and round instead of surfacing as a confusing
        ``TypeError`` from a downstream comparison or list index.
        """
        try:
            return operator.index(port)
        except TypeError:
            raise TypeError(
                f"node {self._contexts[v].node_id} keyed an outbox entry with "
                f"{port!r} in round {rounds}: ports must be integers"
            ) from None

    def run(
        self,
        algorithm: NodeAlgorithm,
        max_rounds: int = 10_000,
        send_plane: str = "auto",
        receive_plane: str = "auto",
        fault_plan: Optional[FaultPlan] = None,
    ) -> Tuple[List[Any], ExecutionMetrics]:
        """Run ``algorithm`` on every node until all nodes are finished.

        Returns the per-node outputs and the execution metrics.  Raises
        ``RuntimeError`` if the algorithm does not terminate within
        ``max_rounds`` rounds (an algorithm that finishes in exactly
        ``max_rounds`` rounds terminates normally).

        ``send_plane`` selects how outgoing messages enter the round
        buffer: ``"dict"`` calls ``algorithm.send()`` and routes the
        returned per-port dicts; ``"batched"`` hands a pooled
        :class:`OutboxWriter` to ``algorithm.send_batch()`` (every
        algorithm supports this — the base class bridges to ``send()``);
        ``"auto"`` picks the batched plane when the algorithm declares
        ``batched_send = True`` and the dict plane otherwise.

        ``receive_plane`` symmetrically selects how the round's messages
        are drained: ``"dict"`` calls the per-node ``receive()`` with a
        pooled :class:`PortInbox` view; ``"batched"`` calls
        ``algorithm.receive_batch()`` once per round with a phase-level
        :class:`RoundInbox` view over the whole buffer and the list of
        unfinished nodes (every algorithm supports this — the base class
        bridges back to ``receive()``); ``"auto"`` picks the batched
        plane when the algorithm declares ``batched_receive = True``.
        All four send × receive combinations produce bit-identical
        outputs and metrics.

        ``fault_plan`` opts the run into the deterministic
        fault-injection plane (:mod:`repro.distributed.faults`): the
        plan's drops/delays/duplicates are applied to the flat slot
        buffer *after* the send phase and its CONGEST audit and *before*
        the receive phase, and crash-stopped nodes are halted at the
        start of their crash round — so a fixed plan produces
        bit-identical outputs, metrics and fault statistics across all
        four plane combinations.  ``metrics.messages`` and the audit
        keep counting *sent* payloads; the realized faults land in
        ``metrics.fault_summary``.  ``None`` (the default) bypasses the
        plane entirely.

        The simulator tracks the set of unfinished nodes instead of
        re-querying every node each round: a node reporting finished is
        assumed to stay finished (termination is monotone in the LOCAL /
        CONGEST models), it no longer sends, and its ``receive`` hook only
        runs in rounds where messages actually arrive for it (late
        delivery runs through the per-node hook on both receive planes).

        Messages move through a flat slot-indexed buffer over the CSR
        adjacency (see the module docstring); ``receive()`` gets a pooled
        :class:`PortInbox` view of the node's row, valid only for that
        call.  Only the slots written this round are cleared afterwards,
        so a round costs O(messages), not O(m).
        """
        if send_plane == "auto":
            use_batched = bool(getattr(algorithm, "batched_send", False))
        elif send_plane == "batched":
            use_batched = True
        elif send_plane == "dict":
            use_batched = False
        else:
            raise ValueError(
                f"unknown send_plane {send_plane!r}: expected 'auto', 'batched' or 'dict'"
            )
        if receive_plane == "auto":
            use_batched_receive = bool(getattr(algorithm, "batched_receive", False))
        elif receive_plane == "batched":
            use_batched_receive = True
        elif receive_plane == "dict":
            use_batched_receive = False
        else:
            raise ValueError(
                f"unknown receive_plane {receive_plane!r}: expected 'auto', "
                f"'batched' or 'dict'"
            )
        contexts = self._contexts
        states = [algorithm.initialize(ctx) for ctx in contexts]
        auditor = self._auditor
        if auditor is not None:
            # Metrics are per-run: a reused network must not accumulate
            # audit state from earlier executions.
            auditor.reset()
        metrics = ExecutionMetrics(
            congest_budget_bits=auditor.budget_bits if auditor else None
        )
        xadj = self._xadj
        adj = self._adj
        rev_slot = self._rev_slot
        # The fault plane is strictly opt-in: an inactive plan costs one
        # predicate here and nothing per round.
        injector = (
            FaultInjector(fault_plan, self._graph.num_nodes, xadj)
            if fault_plan is not None and fault_plan.active
            else None
        )

        # The message plane: one payload slot per (node, port) direction,
        # plus the bookkeeping to clear and deliver in O(messages).
        inbox_buf: List[Any] = [None] * len(adj)
        touched: List[int] = []  # slots written this round
        receivers: set = set()  # nodes with >= 1 message this round
        inbox = PortInbox(inbox_buf)
        round_inbox = RoundInbox(inbox_buf, xadj) if use_batched_receive else None
        batch: List[Any] = []  # dict plane: this round's payloads for the audit
        groups: Optional[List[Tuple[Any, int]]] = [] if auditor is not None else None
        writer = OutboxWriter(
            inbox_buf, adj, rev_slot, touched, receivers, groups, contexts
        )

        unfinished = [
            v for v, ctx in enumerate(contexts) if not algorithm.finished(ctx, states[v])
        ]
        n = self._graph.num_nodes
        blank: List[Any] = [None] * len(adj)
        rounds = 0
        while unfinished:
            if rounds >= max_rounds:
                raise RuntimeError(f"algorithm did not terminate within {max_rounds} rounds")
            if injector is not None and injector.crashed_at(rounds):
                # Crash-stop: the node halts before this round's send
                # phase and never sends, receives or terminates again.
                crashed = injector.crashed
                unfinished = [v for v in unfinished if v not in crashed]
                if not unfinished:
                    break
            # Receiver tracking only matters for late delivery to nodes
            # that are already finished at round start; while every node
            # is still running, skip the per-message set updates.  The
            # fault plane always tracks: deferred re-deliveries may land
            # after the receiver finished.
            track_receivers = len(unfinished) < n or injector is not None
            if use_batched:
                writer._receivers = receivers if track_receivers else None
                writer.sent = 0
                for v in unfinished:
                    algorithm.send_batch(
                        contexts[v],
                        states[v],
                        rounds,
                        writer._bind(xadj[v], xadj[v + 1], v, rounds),
                    )
                metrics.messages += writer.sent
                if groups:
                    batch_max = auditor.record_batch_grouped(groups)
                    if batch_max > metrics.max_message_bits:
                        metrics.max_message_bits = batch_max
                    groups.clear()
            else:
                sent = 0
                for v in unfinished:
                    outbox = algorithm.send(contexts[v], states[v], rounds)
                    if not outbox:
                        continue
                    base = xadj[v]
                    degree = xadj[v + 1] - base
                    for port, payload in outbox.items():
                        if type(port) is not int:
                            port = self._coerce_port(v, port, rounds)
                        if port < 0 or port >= degree:
                            raise ValueError(
                                f"node {contexts[v].node_id} sent on invalid port "
                                f"{port} in round {rounds}: valid ports are "
                                f"0..{degree - 1}"
                            )
                        if payload is None:
                            continue
                        slot = base + port
                        dest = rev_slot[slot]
                        inbox_buf[dest] = payload
                        touched.append(dest)
                        if track_receivers:
                            receivers.add(adj[slot])
                        sent += 1
                        if auditor is not None:
                            batch.append(payload)
                metrics.messages += sent
                if batch:
                    batch_max = auditor.record_batch(batch)
                    if batch_max > metrics.max_message_bits:
                        metrics.max_message_bits = batch_max
                    batch.clear()
            if injector is not None:
                # Post-send, pre-receive: both send planes have produced
                # the identical buffer (and identical audit totals), so
                # faulting here keeps all plane combinations bit-identical.
                injector.apply(rounds, inbox_buf, touched, receivers)
            if use_batched_receive:
                # Phase-level drain: one call covers every unfinished
                # node's slots this round (the bridge in NodeAlgorithm
                # reproduces the per-node loop below bit-identically).
                algorithm.receive_batch(contexts, states, unfinished, round_inbox, rounds)
            else:
                receive = algorithm.receive
                for v in unfinished:
                    # Inlined PortInbox._bind (one attribute pair instead
                    # of a method call per node per round).
                    start = xadj[v]
                    inbox._start = start
                    inbox._degree = xadj[v + 1] - start
                    receive(contexts[v], states[v], inbox, rounds)
            if receivers:
                # Finished nodes still observe late messages addressed to them.
                unfinished_set = set(unfinished)
                for v in sorted(receivers):
                    if v not in unfinished_set:
                        algorithm.receive(
                            contexts[v],
                            states[v],
                            inbox._bind(xadj[v], xadj[v + 1] - xadj[v]),
                            rounds,
                        )
                receivers.clear()
            # Clearing: O(messages) slot resets, or one C-level copy of
            # the blank row when most of the buffer was written anyway.
            if 2 * len(touched) >= len(inbox_buf):
                inbox_buf[:] = blank
            else:
                for slot in touched:
                    inbox_buf[slot] = None
            touched.clear()
            unfinished = [
                v for v in unfinished if not algorithm.finished(contexts[v], states[v])
            ]
            rounds += 1
        metrics.rounds = rounds
        if auditor is not None:
            metrics.congest_violations = len(auditor.violations)
        if injector is not None:
            injector.finish()
            metrics.fault_summary = injector.summary()
        outputs = [
            algorithm.output(ctx, state) for ctx, state in zip(contexts, states)
        ]
        return outputs, metrics
