"""Round accounting.

The higher-level algorithms of the paper are specified as sequences of
*phases* (e.g. the ⌊k/δ⌋−1 phases of the token dropping algorithm, or the
O(log Δ / ν) orientation phases of Section 5), where each phase consists
of a constant number of communication rounds among neighbors.  Rather
than serializing every phase through the message-passing simulator, those
algorithms charge their rounds to a :class:`RoundTracker`: each charge
records how many synchronous rounds the phase would take in the LOCAL or
CONGEST model and a label identifying which part of the algorithm it
belongs to.

The low-level primitives that genuinely need identifier-driven symmetry
breaking (Linial coloring, greedy coloring by color classes) are in
addition implemented on the real message-passing simulator
(:mod:`repro.distributed.network`) and their measured round counts agree
with what they charge here; integration tests assert that.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class RoundTracker:
    """Accumulates synchronous communication rounds, with per-label breakdown."""

    def __init__(self) -> None:
        self._total = 0
        self._breakdown: "OrderedDict[str, int]" = OrderedDict()
        self._scope: Optional[str] = None

    @property
    def total(self) -> int:
        """Total number of rounds charged so far."""
        return self._total

    @property
    def breakdown(self) -> Dict[str, int]:
        """Rounds per label, in charge order."""
        return dict(self._breakdown)

    def charge(self, rounds: int, label: str = "unlabelled") -> None:
        """Charge ``rounds`` synchronous rounds under ``label``.

        Zero-round charges are allowed (they record that a phase ran but
        needed no communication); negative charges are rejected.
        """
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        if self._scope is not None:
            label = f"{self._scope}/{label}"
        self._total += rounds
        self._breakdown[label] = self._breakdown.get(label, 0) + rounds

    @contextmanager
    def scope(self, label: str) -> Iterator["RoundTracker"]:
        """Prefix all charges inside the context with ``label/``."""
        previous = self._scope
        self._scope = label if previous is None else f"{previous}/{label}"
        try:
            yield self
        finally:
            self._scope = previous

    def merge(self, other: "RoundTracker", label: Optional[str] = None) -> None:
        """Add another tracker's rounds (optionally under a prefix label)."""
        for key, value in other.breakdown.items():
            merged = key if label is None else f"{label}/{key}"
            self.charge(value, merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoundTracker(total={self._total})"
