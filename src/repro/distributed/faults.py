"""Deterministic fault-injection plane for the synchronous simulator.

The paper's algorithms are *distributed*: they are supposed to tolerate
an adversarial network, not just the perfect one the simulator delivers
by default.  This module turns "the algorithm is distributed" into a
measurable claim: an opt-in :class:`FaultPlan` makes
:meth:`repro.distributed.network.SynchronousNetwork.run` drop, delay and
duplicate messages and crash-stop nodes — deterministically, derived
from a seed, identically across every send × receive plane combination.

**Fault model.**  Faults are applied to the flat slot-indexed round
buffer *after* the send phase (and its CONGEST audit) and *before* the
receive phase.  Because both send planes produce bit-identical buffer
contents (the twin discipline), and the fault decisions below depend
only on ``(seed, round, slot)`` — never on iteration order, plane
choice, worker identity or wall clock — a fixed plan yields
bit-identical outputs, metrics and fault statistics across all four
send × receive combinations.  The supported faults:

* **drop** — a delivered payload is erased from its slot; the receiver
  sees an absent message (``None`` slot), exactly as if the sender had
  skipped the port.
* **delay** — the payload is removed from the current round and
  re-injected into the same slot ``1..max_delay`` rounds later.  If the
  slot is occupied by a fresh message when the delayed copy comes due,
  the copy is lost (counted in ``lost``); re-injected payloads are not
  faulted a second time.
* **duplicate** — the payload is delivered normally *and* a copy is
  scheduled for re-injection ``1..max_delay`` rounds later (same
  collision rule as delay).
* **crash-stop** — a node halts at the start of its crash round: it
  never sends or receives again (messages already in flight to it are
  suppressed), it is removed from the unfinished set, and its output is
  whatever its state yields at that point.  Crash rounds come from the
  explicit ``crashes`` schedule and/or the seed-derived ``crash_rate``.

Metrics semantics under faults: ``ExecutionMetrics.messages`` and the
CONGEST audit keep counting *sent* messages (auditing happens on the
send side, before injection), so they stay identical to the fault-free
run of the same rounds; what the receivers actually saw is recorded in
:class:`FaultStats` and surfaced as ``ExecutionMetrics.fault_summary``.

**Determinism contract.**  Every per-message decision is a pure function
of ``(plan.seed, fault channel, round, slot)`` through a splitmix64
hash; every per-node crash decision of ``(plan.seed, channel, node)``.
There is no shared RNG stream to consume out of order, so the decisions
are independent of how many other faults fired, of the send plane's
write order, and of the process executing the run — the property the
runtime's bit-identical-rows guarantee and the differential matrix
(``tests/test_differential_paths.py``) rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

_MASK64 = (1 << 64) - 1

# Channel salts: independent decision streams per fault type.
_CH_DROP = 0xD509
_CH_DELAY = 0xDE1A
_CH_DELAY_STEPS = 0xDE1B
_CH_DUPLICATE = 0xD0B1
_CH_CRASH = 0xC4A5
_CH_CRASH_ROUND = 0xC4A6


def _mix(x: int) -> int:
    """One splitmix64 finalization step (pure-python, exact 64-bit)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def fault_unit(seed: int, channel: int, a: int, b: int = 0) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one fault decision.

    Pure function of ``(seed, channel, a, b)`` — typically
    ``(plan.seed, fault type, round, slot)`` — so decisions are
    order-independent and identical across planes and processes.
    """
    h = _mix(seed & _MASK64 ^ _mix(channel))
    h = _mix(h ^ a & _MASK64)
    h = _mix(h ^ b & _MASK64)
    return h / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-derived fault schedule for one simulator run.

    All rates are probabilities in ``[0, 1]`` evaluated independently
    per delivered message (drop / delay / duplicate, in that order) or
    per node (crash).  A plan is plain data: it can live in scenario
    cell params (:meth:`as_dict` / :meth:`from_params`) and is folded
    into nothing — the same plan always produces the same faults.

    Attributes:
        seed: root of every fault decision.
        drop_rate: probability a delivered payload is erased.
        delay_rate: probability a payload is deferred by
            ``1..max_delay`` rounds instead of delivered now.
        duplicate_rate: probability a payload is additionally
            re-delivered ``1..max_delay`` rounds later.
        max_delay: upper bound (inclusive) of the deferral distance.
        crash_rate: probability a node crash-stops, at a seed-derived
            round in ``[0, crash_round_range)``.
        crash_round_range: range the derived crash rounds are drawn from.
        crashes: explicit ``(node, round)`` crash-stops, applied on top
            of the derived ones (the earlier round wins per node).
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_delay: int = 2
    crash_rate: float = 0.0
    crash_round_range: int = 8
    crashes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay!r}")
        if self.crash_round_range < 1:
            raise ValueError(
                f"crash_round_range must be >= 1, got {self.crash_round_range!r}"
            )
        normalized = tuple((int(v), int(r)) for v, r in self.crashes)
        if any(r < 0 for _v, r in normalized):
            raise ValueError("explicit crash rounds must be >= 0")
        object.__setattr__(self, "crashes", normalized)

    @property
    def active(self) -> bool:
        """Whether the plan can produce any fault at all."""
        return bool(
            self.drop_rate
            or self.delay_rate
            or self.duplicate_rate
            or self.crash_rate
            or self.crashes
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_params`)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "duplicate_rate": self.duplicate_rate,
            "max_delay": self.max_delay,
            "crash_rate": self.crash_rate,
            "crash_round_range": self.crash_round_range,
            "crashes": [list(pair) for pair in self.crashes],
        }

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "FaultPlan":
        """Build a plan from a JSON-style mapping (unknown keys rejected)."""
        known = {
            "seed",
            "drop_rate",
            "delay_rate",
            "duplicate_rate",
            "max_delay",
            "crash_rate",
            "crash_round_range",
            "crashes",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        kwargs = dict(params)
        if "crashes" in kwargs:
            kwargs["crashes"] = tuple(
                (int(v), int(r)) for v, r in kwargs["crashes"]  # type: ignore[union-attr]
            )
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class FaultStats:
    """What one faulted run actually did to the message stream.

    All counters are deterministic for a fixed plan and algorithm (see
    the module docstring), so they may safely appear in result rows.
    """

    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    injected: int = 0  # deferred copies that reached their slot
    lost: int = 0  # deferred copies lost to collisions or run end
    suppressed: int = 0  # payloads addressed to crashed nodes
    crashes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        return self.dropped + self.delayed + self.duplicated + len(self.crashes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "injected": self.injected,
            "lost": self.lost,
            "suppressed": self.suppressed,
            "crashes": [list(pair) for pair in self.crashes],
        }


class FaultInjector:
    """Applies a :class:`FaultPlan` to one simulator run's round buffers.

    Owned and driven by :meth:`SynchronousNetwork.run`; one injector per
    run (it carries the in-flight deferred deliveries and the realized
    :class:`FaultStats`).  All mutation happens between the send audit
    and the receive phase — see the module docstring for the contract.
    """

    def __init__(self, plan: FaultPlan, num_nodes: int, xadj: Sequence[int]) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._xadj = xadj
        self._pending: Dict[int, List[Tuple[int, Any]]] = {}
        self.crashed: Set[int] = set()
        schedule: Dict[int, int] = {}
        for node, round_index in plan.crashes:
            if 0 <= node < num_nodes:
                current = schedule.get(node)
                schedule[node] = round_index if current is None else min(current, round_index)
        if plan.crash_rate > 0.0:
            seed = plan.seed
            for v in range(num_nodes):
                if fault_unit(seed, _CH_CRASH, v) < plan.crash_rate:
                    derived = int(
                        fault_unit(seed, _CH_CRASH_ROUND, v) * plan.crash_round_range
                    )
                    current = schedule.get(v)
                    schedule[v] = derived if current is None else min(current, derived)
        self._crash_schedule = schedule

    def _slot_owner(self, slot: int) -> int:
        """The node whose inbox row contains ``slot``."""
        return bisect_right(self._xadj, slot) - 1

    def crashed_at(self, round_index: int) -> List[int]:
        """Nodes whose crash round is ``round_index`` (ascending), realized.

        Marks them crashed and records the crash in the stats — a crash
        scheduled past the run's termination never appears.
        """
        fallen = sorted(
            v
            for v, r in self._crash_schedule.items()
            if r == round_index and v not in self.crashed
        )
        for v in fallen:
            self.crashed.add(v)
            self.stats.crashes.append((v, round_index))
        return fallen

    def _defer(self, round_index: int, slot: int, payload: Any, spread: int) -> None:
        distance = 1 + int(
            fault_unit(self.plan.seed, _CH_DELAY_STEPS, round_index, slot + spread)
            * self.plan.max_delay
        )
        if distance > self.plan.max_delay:  # fault_unit < 1.0, but guard exactly
            distance = self.plan.max_delay
        self._pending.setdefault(round_index + distance, []).append((slot, payload))

    def apply(
        self,
        round_index: int,
        buf: List[Any],
        touched: List[int],
        receivers: Optional[Set[int]],
    ) -> None:
        """Fault this round's buffer in place (post-send, pre-receive).

        Fresh payloads are faulted first (suppress-to-crashed, then
        drop, delay, duplicate — first matching channel wins, except
        duplicate which keeps the original); deferred copies from
        earlier rounds are injected afterwards into still-empty slots
        and are never re-faulted.  When ``receivers`` is given it is
        rebuilt to exactly the nodes that still have a payload, so late
        delivery to finished nodes matches what the faults left behind.
        """
        plan = self.plan
        stats = self.stats
        seed = plan.seed
        for slot in sorted(set(touched)):
            payload = buf[slot]
            if payload is None:
                continue
            if self.crashed and self._slot_owner(slot) in self.crashed:
                buf[slot] = None
                stats.suppressed += 1
                continue
            if plan.drop_rate and fault_unit(seed, _CH_DROP, round_index, slot) < plan.drop_rate:
                buf[slot] = None
                stats.dropped += 1
                continue
            if (
                plan.delay_rate
                and fault_unit(seed, _CH_DELAY, round_index, slot) < plan.delay_rate
            ):
                buf[slot] = None
                stats.delayed += 1
                self._defer(round_index, slot, payload, spread=0)
                continue
            if (
                plan.duplicate_rate
                and fault_unit(seed, _CH_DUPLICATE, round_index, slot) < plan.duplicate_rate
            ):
                stats.duplicated += 1
                self._defer(round_index, slot, payload, spread=1)
        due = self._pending.pop(round_index, None)
        if due:
            for slot, payload in sorted(due, key=lambda item: item[0]):
                if self.crashed and self._slot_owner(slot) in self.crashed:
                    stats.suppressed += 1
                elif buf[slot] is None:
                    buf[slot] = payload
                    touched.append(slot)
                    stats.injected += 1
                else:
                    stats.lost += 1  # collided with a fresh payload
        if receivers is not None:
            receivers.clear()
            for slot in touched:
                if buf[slot] is not None:
                    receivers.add(self._slot_owner(slot))

    def finish(self) -> None:
        """Account deferred copies still in flight when the run ended."""
        for batch in self._pending.values():
            self.stats.lost += len(batch)
        self._pending.clear()

    def summary(self) -> Dict[str, object]:
        """The realized fault statistics (JSON-serializable)."""
        return self.stats.as_dict()
