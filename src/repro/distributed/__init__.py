"""Synchronous distributed-computing substrate (LOCAL / CONGEST simulation).

The simulator (:class:`SynchronousNetwork`) runs a
:class:`NodeAlgorithm` on every node in lock-step rounds over an
array-batched message plane (flat slot-indexed buffers over the graph's
CSR adjacency; see :mod:`repro.distributed.network`).  In CONGEST mode
(``Model.CONGEST``) every delivered payload is audited against the
per-message budget ``congest_factor * ceil(log2 n)`` bits — the
``congest_factor`` argument of :class:`SynchronousNetwork` is the
constant of the model's O(log n) bound, default
:data:`repro.distributed.model.DEFAULT_CONGEST_FACTOR` — with payload
sizes estimated by :func:`message_size_bits` (see
:mod:`repro.distributed.messages` for the encoding).  Audit results land
in :class:`ExecutionMetrics` (``max_message_bits``,
``congest_violations``); LOCAL runs skip the audit.

Algorithms send either through per-round ``send()`` dicts or — on the
batched send plane — by writing payloads straight into the flat
slot-indexed round buffer through an :class:`OutboxWriter` view (see the
batched-send contract on :class:`NodeAlgorithm`: slot ownership,
``None``-payload semantics, audit equivalence).  Symmetrically, the
receive side either hands each node a pooled :class:`PortInbox` view per
round, or — on the batched receive plane — hands the algorithm one
phase-level :class:`RoundInbox` view over the whole round's buffer and
lets it sweep every incoming slot at once (see the batched-receive
contract on :class:`NodeAlgorithm`: per-(node, port) slot ownership,
``None`` slots are absent messages and never surface, views die with the
round, late delivery stays per-node, and auditing lives on the send side
so the totals are arithmetically identical).  All four send × receive
plane combinations are bit-identical in outputs and metrics
(``tests/test_differential_paths.py`` pins the matrix,
``tests/test_receive_plane.py`` the edge semantics).

**Fault model.**  The simulator is perfectly reliable by default; a run
opts into adversity by passing a :class:`FaultPlan`
(:mod:`repro.distributed.faults`) to :meth:`SynchronousNetwork.run`.
The plan describes message **drops**, **delays** (re-delivery 1..k
rounds later), **duplicates** (a deferred extra copy) and node
**crash-stops** (a node halts at its crash round and never sends or
receives again).  *Where in the round they apply*: crash-stops at round
start, before the send phase; message faults to the flat slot buffer
after the send phase **and its CONGEST audit** but before the receive
phase — so ``metrics.messages`` / the audit count *sent* payloads and
stay equal to the fault-free totals of the same rounds, while the
realized faults are reported in ``metrics.fault_summary``.
*Determinism contract*: every decision is a pure splitmix64 hash of
``(plan.seed, fault channel, round, slot-or-node)`` — independent of
iteration order, plane choice, worker count and process identity — so a
fixed plan produces bit-identical outputs, metrics and fault statistics
across all four send × receive plane combinations and any executor
sharding (pinned by the fault matrix in
``tests/test_differential_paths.py`` and ``tests/test_faults.py``).
"""

from repro.distributed.model import Model, congest_bit_budget
from repro.distributed.rounds import RoundTracker
from repro.distributed.messages import CongestAuditor, message_size_bits
from repro.distributed.metrics import ExecutionMetrics
from repro.distributed.faults import FaultInjector, FaultPlan, FaultStats
from repro.distributed.network import (
    OutboxWriter,
    PortInbox,
    RoundInbox,
    SynchronousNetwork,
)
from repro.distributed.algorithms import NodeAlgorithm

__all__ = [
    "Model",
    "congest_bit_budget",
    "RoundTracker",
    "CongestAuditor",
    "message_size_bits",
    "ExecutionMetrics",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "OutboxWriter",
    "PortInbox",
    "RoundInbox",
    "SynchronousNetwork",
    "NodeAlgorithm",
]
