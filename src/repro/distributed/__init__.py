"""Synchronous distributed-computing substrate (LOCAL / CONGEST simulation)."""

from repro.distributed.model import Model, congest_bit_budget
from repro.distributed.rounds import RoundTracker
from repro.distributed.messages import CongestAuditor, message_size_bits
from repro.distributed.metrics import ExecutionMetrics
from repro.distributed.network import SynchronousNetwork
from repro.distributed.algorithms import NodeAlgorithm

__all__ = [
    "Model",
    "congest_bit_budget",
    "RoundTracker",
    "CongestAuditor",
    "message_size_bits",
    "ExecutionMetrics",
    "SynchronousNetwork",
    "NodeAlgorithm",
]
