"""Message-size accounting for the CONGEST model.

Messages exchanged by the simulated algorithms are plain Python values
(integers, booleans, tuples/lists of such, small dicts).  For CONGEST
auditing we estimate how many bits an honest binary encoding of the value
would take:

* an integer ``x`` costs ``bit_length(|x|) + 1`` bits (sign/zero bit),
* a boolean or ``None`` costs 1 bit,
* a float costs 64 bits,
* a sequence costs the sum of its elements plus a small length header,
* a mapping costs the sum over keys and values plus a header.

The estimates only need to be accurate up to constant factors — the
CONGEST bound itself is O(log n) bits.

Three auditing entry points are provided.  :meth:`CongestAuditor.record`
sizes one payload at a time; :meth:`CongestAuditor.record_batch` sizes a
whole round of payloads in one call, memoizing the size of repeated
scalar payloads (distributed algorithms overwhelmingly resend the same
few values — colors, identifiers — to every neighbor); and
:meth:`CongestAuditor.record_batch_grouped` takes ``(payload, count)``
pairs so a broadcast is sized **once** and accounted arithmetically —
this is what the simulator's batched send plane emits.  All three
maintain exactly the same counters: per-payload sizes, totals, the
running maximum and the ordered violation list are bit-identical
whichever entry point delivered the payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.distributed.model import congest_bit_budget

_LENGTH_HEADER_BITS = 8


def message_size_bits(payload: Any) -> int:
    """Estimated size of ``payload`` in bits under a straightforward encoding."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, abs(payload).bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return _LENGTH_HEADER_BITS + 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _LENGTH_HEADER_BITS + sum(message_size_bits(item) for item in payload)
    if isinstance(payload, dict):
        return _LENGTH_HEADER_BITS + sum(
            message_size_bits(key) + message_size_bits(value) for key, value in payload.items()
        )
    raise TypeError(f"cannot estimate the size of a {type(payload).__name__} message")


@dataclass
class CongestAuditor:
    """Records message sizes and checks them against the CONGEST budget.

    Args:
        num_nodes: size of the network (defines the O(log n) budget).
        factor: constant factor allowed in the budget.
        strict: when true, :meth:`record` raises on violation instead of
            only recording it.
    """

    num_nodes: int
    factor: int = 8
    strict: bool = False
    messages_recorded: int = 0
    total_bits: int = 0
    max_bits: int = 0
    violations: List[int] = field(default_factory=list)

    @cached_property
    def budget_bits(self) -> int:
        """The per-message budget in bits (computed once, then cached —
        ``num_nodes`` and ``factor`` are fixed at construction)."""
        return congest_bit_budget(self.num_nodes, self.factor)

    def record(self, payload: Any) -> int:
        """Record one message; returns its estimated size in bits."""
        bits = message_size_bits(payload)
        self.messages_recorded += 1
        self.total_bits += bits
        self.max_bits = max(self.max_bits, bits)
        if bits > self.budget_bits:
            self.violations.append(bits)
            if self.strict:
                raise ValueError(
                    f"CONGEST violation: message of {bits} bits exceeds budget of {self.budget_bits} bits"
                )
        return bits

    def record_batch(self, payloads: Iterable[Any]) -> int:
        """Record a whole round of messages at once; returns the batch maximum.

        Equivalent to calling :meth:`record` on every payload in order
        (same counters, same violation list, and in strict mode the raise
        happens at the first violating payload, with every payload up to
        and including it recorded) — but the budget is read once, and the
        sizes of repeated ``int`` / ``str`` payloads are memoized within
        the batch.  The memo is keyed by value and deliberately restricted
        to those two exact types: ``bool`` (``True == 1``) and ``float``
        (``1.0 == 1``) payloads compare equal to integers while sizing
        differently, so they — and all containers — fall through to a
        direct :func:`message_size_bits` call.

        Returns 0 for an empty batch (``max_bits`` is untouched).
        """
        budget = self.budget_bits
        memo: Dict[Any, int] = {}
        violations = self.violations
        count = 0
        total = 0
        batch_max = 0
        for payload in payloads:
            kind = type(payload)
            if kind is int or kind is str:
                bits = memo.get(payload)
                if bits is None:
                    bits = message_size_bits(payload)
                    memo[payload] = bits
            else:
                bits = message_size_bits(payload)
            count += 1
            total += bits
            if bits > batch_max:
                batch_max = bits
            if bits > budget:
                violations.append(bits)
                if self.strict:
                    self.messages_recorded += count
                    self.total_bits += total
                    if batch_max > self.max_bits:
                        self.max_bits = batch_max
                    raise ValueError(
                        f"CONGEST violation: message of {bits} bits exceeds budget of {budget} bits"
                    )
        self.messages_recorded += count
        self.total_bits += total
        if batch_max > self.max_bits:
            self.max_bits = batch_max
        return batch_max

    def record_batch_grouped(self, groups: Iterable[Tuple[Any, int]]) -> int:
        """Record ``(payload, count)`` pairs; returns the batch maximum.

        Equivalent to calling :meth:`record` ``count`` times per pair, in
        pair order — identical ``messages_recorded`` / ``total_bits`` /
        ``max_bits`` counters and an identical violation list (a
        violating payload appends its size ``count`` times) — but each
        distinct payload is sized exactly once.  This is the entry point
        of the simulator's batched send plane, where a broadcast arrives
        as one pair instead of ``degree`` repeated payloads; the
        equivalence is what makes batched and per-message auditing
        bit-identical.  In strict mode the raise happens at the first
        violating payload, with every payload up to and including it
        recorded (the remainder of its group is not).

        Returns 0 for an empty iterable (``max_bits`` is untouched).
        """
        budget = self.budget_bits
        violations = self.violations
        memo: Dict[Any, int] = {}
        count_total = 0
        total = 0
        batch_max = 0
        for payload, count in groups:
            if count <= 0:
                continue
            # Same memo discipline as record_batch: exact int/str only
            # (bool/float compare equal to ints but size differently).
            kind = type(payload)
            if kind is int or kind is str:
                bits = memo.get(payload)
                if bits is None:
                    bits = message_size_bits(payload)
                    memo[payload] = bits
            else:
                bits = message_size_bits(payload)
            if bits > batch_max:
                batch_max = bits
            if bits > budget:
                if self.strict:
                    count_total += 1
                    total += bits
                    violations.append(bits)
                    self.messages_recorded += count_total
                    self.total_bits += total
                    if batch_max > self.max_bits:
                        self.max_bits = batch_max
                    raise ValueError(
                        f"CONGEST violation: message of {bits} bits exceeds budget of {budget} bits"
                    )
                violations.extend([bits] * count)
            count_total += count
            total += bits * count
        self.messages_recorded += count_total
        self.total_bits += total
        if batch_max > self.max_bits:
            self.max_bits = batch_max
        return batch_max

    @property
    def compliant(self) -> bool:
        """Whether every recorded message respected the budget."""
        return not self.violations

    def reset(self) -> None:
        """Clear the recorded counters (not the budget).

        :meth:`SynchronousNetwork.run` resets its auditor at the start of
        every execution so a reused network reports per-run violation
        counts instead of accumulating across runs.
        """
        self.messages_recorded = 0
        self.total_bits = 0
        self.max_bits = 0
        self.violations.clear()

    def summary(self) -> Dict[str, Optional[int]]:
        """A compact summary used by the benchmarks."""
        return {
            "messages": self.messages_recorded,
            "max_bits": self.max_bits,
            "budget_bits": self.budget_bits,
            "violations": len(self.violations),
        }
