"""Message-size accounting for the CONGEST model.

Messages exchanged by the simulated algorithms are plain Python values
(integers, booleans, tuples/lists of such, small dicts).  For CONGEST
auditing we estimate how many bits an honest binary encoding of the value
would take:

* an integer ``x`` costs ``bit_length(|x|) + 1`` bits (sign/zero bit),
* a boolean or ``None`` costs 1 bit,
* a float costs 64 bits,
* a sequence costs the sum of its elements plus a small length header,
* a mapping costs the sum over keys and values plus a header.

The estimates only need to be accurate up to constant factors — the
CONGEST bound itself is O(log n) bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.distributed.model import congest_bit_budget

_LENGTH_HEADER_BITS = 8


def message_size_bits(payload: Any) -> int:
    """Estimated size of ``payload`` in bits under a straightforward encoding."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, abs(payload).bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return _LENGTH_HEADER_BITS + 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _LENGTH_HEADER_BITS + sum(message_size_bits(item) for item in payload)
    if isinstance(payload, dict):
        return _LENGTH_HEADER_BITS + sum(
            message_size_bits(key) + message_size_bits(value) for key, value in payload.items()
        )
    raise TypeError(f"cannot estimate the size of a {type(payload).__name__} message")


@dataclass
class CongestAuditor:
    """Records message sizes and checks them against the CONGEST budget.

    Args:
        num_nodes: size of the network (defines the O(log n) budget).
        factor: constant factor allowed in the budget.
        strict: when true, :meth:`record` raises on violation instead of
            only recording it.
    """

    num_nodes: int
    factor: int = 8
    strict: bool = False
    messages_recorded: int = 0
    total_bits: int = 0
    max_bits: int = 0
    violations: List[int] = field(default_factory=list)

    @property
    def budget_bits(self) -> int:
        """The per-message budget in bits."""
        return congest_bit_budget(self.num_nodes, self.factor)

    def record(self, payload: Any) -> int:
        """Record one message; returns its estimated size in bits."""
        bits = message_size_bits(payload)
        self.messages_recorded += 1
        self.total_bits += bits
        self.max_bits = max(self.max_bits, bits)
        if bits > self.budget_bits:
            self.violations.append(bits)
            if self.strict:
                raise ValueError(
                    f"CONGEST violation: message of {bits} bits exceeds budget of {self.budget_bits} bits"
                )
        return bits

    @property
    def compliant(self) -> bool:
        """Whether every recorded message respected the budget."""
        return not self.violations

    def summary(self) -> Dict[str, Optional[int]]:
        """A compact summary used by the benchmarks."""
        return {
            "messages": self.messages_recorded,
            "max_bits": self.max_bits,
            "budget_bits": self.budget_bits,
            "violations": len(self.violations),
        }
