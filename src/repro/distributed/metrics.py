"""Execution metrics shared by simulator runs and phase-charged algorithms.

Message accounting semantics: ``messages`` counts every non-``None``
payload delivered (a payload of ``None`` means "send nothing on this
port" and is neither delivered nor counted).  In CONGEST runs each
counted payload is sized by
:func:`repro.distributed.messages.message_size_bits` against the budget
``congest_factor * ceil(log2 n)`` bits (see
:func:`repro.distributed.model.congest_bit_budget`); ``max_message_bits``
is the largest size observed across the whole run and
``congest_violations`` the number of payloads over budget.  LOCAL runs
perform no audit: ``congest_budget_bits`` is ``None`` and
``max_message_bits`` stays 0.

Fault accounting: runs executed under a
:class:`repro.distributed.faults.FaultPlan` record the realized fault
statistics (drops, delays, duplicates, crash-stops — see
:mod:`repro.distributed.faults` for the fault model) in
``fault_summary``; ``messages`` and the CONGEST audit keep counting
*sent* payloads, so they match the fault-free run of the same rounds.
Fault-free runs leave ``fault_summary`` as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ExecutionMetrics:
    """What a simulated execution cost.

    Attributes:
        rounds: synchronous communication rounds.
        messages: number of (non-empty) messages delivered, when the
            execution went through the message-passing simulator.
        max_message_bits: size of the largest message, when audited.
        congest_budget_bits: the CONGEST budget the run was audited against
            (``None`` for LOCAL runs).
        congest_violations: number of messages that exceeded the budget.
        round_breakdown: rounds per algorithm phase label.
        fault_summary: realized fault statistics when the run executed
            under a :class:`repro.distributed.faults.FaultPlan`
            (deterministic for a fixed plan); ``None`` for fault-free runs.
    """

    rounds: int = 0
    messages: int = 0
    max_message_bits: int = 0
    congest_budget_bits: Optional[int] = None
    congest_violations: int = 0
    round_breakdown: Dict[str, int] = field(default_factory=dict)
    fault_summary: Optional[Dict[str, object]] = None

    def merge(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        """Combine two executions run one after the other."""
        breakdown = dict(self.round_breakdown)
        for key, value in other.round_breakdown.items():
            breakdown[key] = breakdown.get(key, 0) + value
        return ExecutionMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            congest_budget_bits=self.congest_budget_bits or other.congest_budget_bits,
            congest_violations=self.congest_violations + other.congest_violations,
            round_breakdown=breakdown,
            fault_summary=_merge_fault_summaries(self.fault_summary, other.fault_summary),
        )


def _merge_fault_summaries(
    left: Optional[Dict[str, object]], right: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """Sum the counters of two fault summaries; crash lists concatenate."""
    if left is None:
        return dict(right) if right is not None else None
    if right is None:
        return dict(left)
    merged: Dict[str, object] = {}
    for key in set(left) | set(right):
        a, b = left.get(key), right.get(key)
        if isinstance(a, list) or isinstance(b, list):
            merged[key] = list(a or []) + list(b or [])
        else:
            merged[key] = (a or 0) + (b or 0)
    return merged
