"""Base class for algorithms executed on the message-passing simulator.

A :class:`NodeAlgorithm` describes the behaviour of a single node: what
local state it starts with, what messages it sends to each neighbor in a
round, how it updates its state when the neighbors' messages arrive, and
when it has terminated.  The simulator (:class:`repro.distributed.network.
SynchronousNetwork`) instantiates one state object per node and drives
all of them in lock-step synchronous rounds, exactly like the LOCAL /
CONGEST models of Section 2.

Nodes only ever see:

* their own node index, identifier, degree and incident ports,
* global problem parameters handed to every node (n, Δ, the color space),
* the messages received from their neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class NodeContext:
    """Read-only local information available to a node.

    Attributes:
        node: the node index (used only as a simulator handle).
        node_id: the unique O(log n)-bit identifier of the node.
        degree: the node's degree.
        neighbor_ids: identifiers of the neighbors, indexed by port.
        globals: problem parameters known to all nodes (n, Δ, ...).
    """

    node: int
    node_id: int
    degree: int
    neighbor_ids: List[int]
    globals: Dict[str, Any] = field(default_factory=dict)


class NodeAlgorithm:
    """Behaviour of a node in a synchronous distributed algorithm.

    Subclasses override :meth:`initialize`, :meth:`send`, :meth:`receive`
    and :meth:`finished`.  Messages are addressed by *port*: the position
    of the neighbor in ``NodeContext.neighbor_ids``.

    **Batched send contract.**  The simulator offers two send planes.
    On the default *dict* plane it calls :meth:`send` and routes the
    returned per-port dict.  On the *batched* plane it calls
    :meth:`send_batch` with a pooled
    :class:`repro.distributed.network.OutboxWriter` bound to the node's
    slots, and the algorithm writes payloads straight into the flat
    slot-indexed round buffer — no per-round dict is ever built.  The
    contract:

    * the writer is only valid for the duration of the ``send_batch``
      call, and only for the bound node's ports (*slot ownership*: port
      ``p`` of node ``v`` owns exactly one buffer slot per round, and no
      other node can write it);
    * writing ``None`` is a no-op — exactly like omitting the port from
      (or storing ``None`` in) a ``send()`` dict, a ``None`` payload is
      *not sent*: it is neither delivered, nor counted, nor audited;
    * each port should be written at most once per round (a second write
      overwrites the payload but both writes count as sent messages);
    * metrics and CONGEST auditing are bit-identical across the two
      planes (*audit equivalence*): same message counts, same
      ``max_message_bits``, same ordered violation list.

    Algorithms with a native batched implementation set the class
    attribute ``batched_send = True`` (the simulator's ``"auto"`` mode
    then picks the batched plane) and override :meth:`send_batch`; the
    default implementation bridges to :meth:`send`, so *any* algorithm
    can be forced onto either plane for differential testing.

    **Batched receive contract.**  Symmetrically, the simulator offers
    two receive planes.  On the default *dict* plane it calls
    :meth:`receive` once per unfinished node with a pooled
    :class:`repro.distributed.network.PortInbox` view.  On the *batched*
    plane it calls :meth:`receive_batch` **once per round** with a
    phase-level :class:`repro.distributed.network.RoundInbox` view over
    the whole round's flat slot buffer and the ascending list of
    unfinished nodes.  The contract:

    * *slot ownership*: slot ``xadj[v] + p`` of the round buffer belongs
      to port ``p`` of node ``v``; a batched implementation may only
      read the slots of the nodes it was handed;
    * ``None`` slots mean *no message arrived on that port* — they are
      never surfaced by the dict plane's views, and batched
      implementations must skip them the same way;
    * the view is only valid for the duration of the ``receive_batch``
      call (the simulator clears the round's slots afterwards); payloads
      that must outlive the call have to be copied out;
    * late delivery to already-finished nodes always runs through the
      per-node :meth:`receive` hook, on both planes, after the
      phase-level call;
    * metrics and CONGEST auditing happen on the send side, so they are
      bit-identical across the receive planes by construction (*audit
      equivalence*); outputs and round counts must match too — the
      differential matrix pins all four plane combinations.

    Algorithms with a native phase-level implementation set
    ``batched_receive = True`` and override :meth:`receive_batch`; the
    default bridges to :meth:`receive`, so *any* algorithm can be forced
    onto either receive plane for differential testing.
    """

    #: Whether the simulator's ``"auto"`` send plane should use
    #: :meth:`send_batch` (native batched implementations set this).
    batched_send = False

    #: Whether the simulator's ``"auto"`` receive plane should use
    #: :meth:`receive_batch` (native phase-level implementations set this).
    batched_receive = False

    def initialize(self, ctx: NodeContext) -> Dict[str, Any]:
        """Initial local state of the node."""
        return {}

    def send(self, ctx: NodeContext, state: Dict[str, Any], round_index: int) -> Dict[int, Any]:
        """Messages to send this round, keyed by port.  Missing ports send nothing."""
        return {}

    def send_batch(
        self, ctx: NodeContext, state: Dict[str, Any], round_index: int, outbox: Any
    ) -> None:
        """Write this round's messages into ``outbox`` (an ``OutboxWriter``).

        The default bridges to :meth:`send`, so every algorithm runs on
        the batched plane; native implementations override this (see the
        class docstring for the contract) and typically use
        ``outbox.broadcast(payload)`` or ``outbox[port] = payload``.
        """
        for port, payload in self.send(ctx, state, round_index).items():
            outbox[port] = payload

    def receive(
        self,
        ctx: NodeContext,
        state: Dict[str, Any],
        inbox: Dict[int, Any],
        round_index: int,
    ) -> None:
        """Update the local state given the messages received this round.

        ``inbox`` is a read-only, port-keyed mapping (the simulator hands
        a pooled :class:`repro.distributed.network.PortInbox` view that
        is only valid for the duration of this call); copy it out
        (``dict(inbox.items())``) if the messages must outlive the call.
        """

    def receive_batch(
        self,
        contexts: List[NodeContext],
        states: List[Dict[str, Any]],
        nodes: List[int],
        inbox: Any,
        round_index: int,
    ) -> None:
        """Process one round's messages for every node in ``nodes``.

        ``inbox`` is a :class:`repro.distributed.network.RoundInbox`
        covering the whole round's slot buffer; ``nodes`` lists the
        unfinished nodes in ascending order.  The default bridges to the
        per-node :meth:`receive` through pooled views — bit-identical to
        the dict plane — so every algorithm runs on the batched plane;
        native implementations override this (see the class docstring
        for the contract) and typically sweep all slots as arrays.
        """
        receive = self.receive
        for v in nodes:
            receive(contexts[v], states[v], inbox.node(v), round_index)

    def finished(self, ctx: NodeContext, state: Dict[str, Any]) -> bool:
        """Whether this node has produced its final output."""
        return True

    def output(self, ctx: NodeContext, state: Dict[str, Any]) -> Any:
        """The node's final output (read by the caller after termination)."""
        return state.get("output")
