"""Base class for algorithms executed on the message-passing simulator.

A :class:`NodeAlgorithm` describes the behaviour of a single node: what
local state it starts with, what messages it sends to each neighbor in a
round, how it updates its state when the neighbors' messages arrive, and
when it has terminated.  The simulator (:class:`repro.distributed.network.
SynchronousNetwork`) instantiates one state object per node and drives
all of them in lock-step synchronous rounds, exactly like the LOCAL /
CONGEST models of Section 2.

Nodes only ever see:

* their own node index, identifier, degree and incident ports,
* global problem parameters handed to every node (n, Δ, the color space),
* the messages received from their neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class NodeContext:
    """Read-only local information available to a node.

    Attributes:
        node: the node index (used only as a simulator handle).
        node_id: the unique O(log n)-bit identifier of the node.
        degree: the node's degree.
        neighbor_ids: identifiers of the neighbors, indexed by port.
        globals: problem parameters known to all nodes (n, Δ, ...).
    """

    node: int
    node_id: int
    degree: int
    neighbor_ids: List[int]
    globals: Dict[str, Any] = field(default_factory=dict)


class NodeAlgorithm:
    """Behaviour of a node in a synchronous distributed algorithm.

    Subclasses override :meth:`initialize`, :meth:`send`, :meth:`receive`
    and :meth:`finished`.  Messages are addressed by *port*: the position
    of the neighbor in ``NodeContext.neighbor_ids``.
    """

    def initialize(self, ctx: NodeContext) -> Dict[str, Any]:
        """Initial local state of the node."""
        return {}

    def send(self, ctx: NodeContext, state: Dict[str, Any], round_index: int) -> Dict[int, Any]:
        """Messages to send this round, keyed by port.  Missing ports send nothing."""
        return {}

    def receive(
        self,
        ctx: NodeContext,
        state: Dict[str, Any],
        inbox: Dict[int, Any],
        round_index: int,
    ) -> None:
        """Update the local state given the messages received this round.

        ``inbox`` is a read-only, port-keyed mapping (the simulator hands
        a pooled :class:`repro.distributed.network.PortInbox` view that
        is only valid for the duration of this call); copy it out
        (``dict(inbox.items())``) if the messages must outlive the call.
        """

    def finished(self, ctx: NodeContext, state: Dict[str, Any]) -> bool:
        """Whether this node has produced its final output."""
        return True

    def output(self, ctx: NodeContext, state: Dict[str, Any]) -> Any:
        """The node's final output (read by the caller after termination)."""
        return state.get("output")
