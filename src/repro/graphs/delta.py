"""Delta application over CSR graphs: the epoch-versioned dynamic overlay.

The serving plane (:mod:`repro.serving`) answers queries against a graph
that *changes* — edges are inserted and deleted between query batches —
while every static algorithm in the tree consumes the immutable
CSR :class:`repro.graphs.core.Graph`.  :class:`DeltaGraph` bridges the
two worlds:

* the **base** is a frozen :class:`Graph` whose CSR arrays are never
  touched;
* deltas are applied to a small **overlay** (per-node sorted insert rows
  plus a deleted-edge set), so a mutation costs O(degree), not a CSR
  rebuild;
* every mutation bumps an **epoch** counter.  The epoch is the version
  tag the serving cache folds into its keys: a cached answer is only
  ever replayed for the epoch it was computed under;
* :meth:`snapshot` materializes the current edge set as an immutable
  :class:`Graph` (cached per epoch) — the bridge back to the static
  pipelines, used by the serving plane's from-scratch ``recompute``
  repair path and by verification;
* :meth:`rebase` folds the overlay into a fresh base when it has grown
  past the point where overlay merging is worth it (the dynamic
  analogue of the result store's ``compact``).

The node set is fixed for the lifetime of the overlay: serving deltas
are edge- and demand-level events, and keeping node identity frozen is
what lets colors be keyed by endpoint pairs across epochs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graphs.core import Graph


def _pair(u: int, v: int) -> Tuple[int, int]:
    """The normalized ``u < v`` endpoint pair."""
    return (u, v) if u < v else (v, u)


class DeltaGraph:
    """A mutable edge-set overlay over an immutable CSR base graph.

    Read API mirrors the subset of :class:`Graph` the serving plane
    needs (``num_nodes`` / ``num_edges`` / ``degree`` / ``neighbors`` /
    ``has_edge`` / ``edge_pairs`` / ``node_ids``); mutations go through
    :meth:`insert_edge` / :meth:`delete_edge` and each bumps
    :attr:`epoch`.
    """

    def __init__(self, base: Graph) -> None:
        self._base = base
        self._epoch = 0
        # Overlay state: edges added on top of the base (sorted per-node
        # rows for deterministic neighbor iteration) and base edges
        # deleted.  An edge is "present" iff (in base and not deleted)
        # or in the added rows.
        self._added_rows: Dict[int, List[int]] = {}
        self._deleted_rows: Dict[int, Set[int]] = {}
        self._added: Set[Tuple[int, int]] = set()
        self._deleted: Set[Tuple[int, int]] = set()
        self._degrees: List[int] = [base.degree(v) for v in base.nodes()]
        self._num_edges = base.num_edges
        self._snapshot: Optional[Graph] = base
        self._snapshot_epoch = 0

    # ------------------------------------------------------------------ meta
    @property
    def base(self) -> Graph:
        """The frozen base graph under the overlay."""
        return self._base

    @property
    def epoch(self) -> int:
        """Version counter: incremented by every applied delta."""
        return self._epoch

    @property
    def overlay_size(self) -> int:
        """Number of overlay entries (added + deleted edges)."""
        return len(self._added) + len(self._deleted)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (fixed for the overlay's lifetime)."""
        return self._base.num_nodes

    @property
    def node_ids(self) -> List[int]:
        """Node identifiers, shared with the base graph."""
        return self._base.node_ids

    @property
    def num_edges(self) -> int:
        """Number of currently present edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate node indices."""
        return self._base.nodes()

    # ----------------------------------------------------------------- reads
    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._base.num_nodes:
            raise ValueError(f"node {v} out of range for {self._base.num_nodes} nodes")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is currently present."""
        key = _pair(u, v)
        if key in self._added:
            return True
        if key in self._deleted:
            return False
        return self._base.has_edge(u, v)

    def degree(self, v: int) -> int:
        """Current degree of node ``v``."""
        return self._degrees[v]

    def max_degree(self) -> int:
        """Current maximum degree over all nodes."""
        return max(self._degrees) if self._degrees else 0

    def neighbors(self, v: int) -> List[int]:
        """Sorted current neighbors of ``v`` (base row merged with overlay).

        Nodes untouched by the overlay get the base CSR row straight
        through (no per-neighbor probing) — the repair worklist calls
        this on every pop, so the untouched-node path stays O(degree)
        with a single slice.
        """
        base_row = self._base.neighbors(v)
        added_row = self._added_rows.get(v)
        deleted_row = self._deleted_rows.get(v)
        if deleted_row:
            kept = [w for w in base_row if w not in deleted_row]
        elif added_row:
            kept = list(base_row)
        else:
            return base_row
        for w in added_row or ():
            insort(kept, w)
        return kept

    def edge_pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every present edge as a normalized ``(u, v)`` pair.

        Order is deterministic (base edge order, then sorted overlay
        inserts) but **not** sorted — canonical consumers sort by pair.
        """
        deleted = self._deleted
        for u, v in self._base._edges:  # noqa: SLF001 - sibling module access
            if (u, v) not in deleted:
                yield (u, v)
        for key in sorted(self._added):
            yield key

    # ------------------------------------------------------------- mutations
    def insert_edge(self, u: int, v: int) -> int:
        """Insert the edge ``{u, v}``; returns the new epoch.

        Raises ``ValueError`` on self-loops, out-of-range endpoints or
        an edge that is already present.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loop at node {u} is not allowed")
        key = _pair(u, v)
        if self.has_edge(u, v):
            raise ValueError(f"edge {key} is already present")
        if key in self._deleted:
            self._deleted.discard(key)
            for a, b in (key, (key[1], key[0])):
                row = self._deleted_rows[a]
                row.discard(b)
                if not row:
                    del self._deleted_rows[a]
        else:
            self._added.add(key)
            insort(self._added_rows.setdefault(key[0], []), key[1])
            insort(self._added_rows.setdefault(key[1], []), key[0])
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._num_edges += 1
        self._epoch += 1
        return self._epoch

    def delete_edge(self, u: int, v: int) -> int:
        """Delete the edge ``{u, v}``; returns the new epoch.

        Raises ``ValueError`` when the edge is not present.
        """
        key = _pair(u, v)
        if not self.has_edge(u, v):
            raise ValueError(f"edge {key} is not present")
        if key in self._added:
            self._added.discard(key)
            row = self._added_rows[key[0]]
            row.pop(bisect_left(row, key[1]))
            row = self._added_rows[key[1]]
            row.pop(bisect_left(row, key[0]))
        else:
            self._deleted.add(key)
            self._deleted_rows.setdefault(key[0], set()).add(key[1])
            self._deleted_rows.setdefault(key[1], set()).add(key[0])
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._num_edges -= 1
        self._epoch += 1
        return self._epoch

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Graph:
        """The current edge set as an immutable :class:`Graph`.

        Cached per epoch: repeated calls between mutations return the
        same object, so the ``recompute`` repair path and verification
        share one materialization.  Edge *indices* of a snapshot are not
        stable across epochs — only endpoint pairs are; everything the
        serving plane persists is keyed by pair for exactly this reason.
        """
        if self._snapshot is not None and self._snapshot_epoch == self._epoch:
            return self._snapshot
        edges = sorted(self.edge_pairs())
        self._snapshot = Graph._from_normalized(  # noqa: SLF001 - fast path
            self._base.num_nodes, edges, list(self._base.node_ids)
        )
        self._snapshot_epoch = self._epoch
        return self._snapshot

    def rebase(self) -> Graph:
        """Fold the overlay into a fresh base graph and clear it.

        The epoch is preserved (a rebase is not a delta: the edge set is
        unchanged, so cached answers stay valid).  Returns the new base.

        **Holder contract**: :attr:`base` is *replaced* by this call, so
        holders must never cache the base graph object across mutations —
        always re-read ``graph.base`` (or better, stay on the
        :class:`DeltaGraph` read API, which is rebase-transparent).
        State keyed by endpoint *pairs* (colorings, demand lists,
        per-epoch mask caches built from pair-keyed colors) survives a
        rebase untouched; state keyed by base-graph edge *indices* does
        not, which is why the serving plane persists nothing by index.
        ``ColoringArtifact`` is audited to this contract and the
        rebase-under-churn twin tests pin it.
        """
        base = self.snapshot()
        self._base = base
        self._added_rows = {}
        self._deleted_rows = {}
        self._added = set()
        self._deleted = set()
        self._snapshot = base
        self._snapshot_epoch = self._epoch
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DeltaGraph(n={self.num_nodes}, m={self._num_edges}, "
            f"epoch={self._epoch}, overlay={self.overlay_size})"
        )
