"""Bipartitions of graphs.

Sections 5–7 of the paper work with *2-colored bipartite graphs*: the
nodes know whether they belong to the side ``U`` or the side ``V``.  A
:class:`Bipartition` records that side information.  ``find_bipartition``
recovers a bipartition of a bipartite graph (used by tests and by the
reduction from general graphs, where the bipartition is induced by a
defective vertex coloring and is therefore known to the nodes).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.core import Graph


class Bipartition:
    """Side assignment of a 2-colored bipartite graph (0 = U, 1 = V)."""

    def __init__(self, sides: Sequence[int]) -> None:
        sides = list(sides)
        for value in sides:
            if value not in (0, 1):
                raise ValueError("sides must be 0 (U) or 1 (V)")
        self._sides = sides

    @property
    def sides(self) -> List[int]:
        """Side of every node, indexed by node."""
        return list(self._sides)

    def side(self, v: int) -> int:
        """Side of node ``v``."""
        return self._sides[v]

    def left_nodes(self) -> List[int]:
        """Nodes on side U (0)."""
        return [v for v, s in enumerate(self._sides) if s == 0]

    def right_nodes(self) -> List[int]:
        """Nodes on side V (1)."""
        return [v for v, s in enumerate(self._sides) if s == 1]

    def orient_edge(self, graph: Graph, e: int) -> Tuple[int, int]:
        """Endpoints of ``e`` as ``(u, v)`` with ``u`` on side U and ``v`` on side V.

        Raises ``ValueError`` if the edge is monochromatic with respect to
        the bipartition.
        """
        a, b = graph.edge_endpoints(e)
        if self._sides[a] == 0 and self._sides[b] == 1:
            return a, b
        if self._sides[a] == 1 and self._sides[b] == 0:
            return b, a
        raise ValueError(f"edge {e} = ({a}, {b}) is not bichromatic in this bipartition")

    def validates(self, graph: Graph, edge_set: Optional[Iterable[int]] = None) -> bool:
        """Whether every (given) edge crosses the bipartition."""
        edges = graph.edges() if edge_set is None else edge_set
        for e in edges:
            a, b = graph.edge_endpoints(e)
            if self._sides[a] == self._sides[b]:
                return False
        return True


def bipartition_from_sides(left: Iterable[int], num_nodes: int) -> Bipartition:
    """A bipartition whose U side is exactly ``left``."""
    left_set = set(left)
    return Bipartition([0 if v in left_set else 1 for v in range(num_nodes)])


def find_bipartition(graph: Graph) -> Optional[Bipartition]:
    """A 2-coloring of ``graph`` if it is bipartite, otherwise ``None``.

    Isolated nodes and nodes in components not containing edges are put on
    side U.
    """
    sides: List[Optional[int]] = [None] * graph.num_nodes
    for start in graph.nodes():
        if sides[start] is not None:
            continue
        sides[start] = 0
        stack = [start]
        while stack:
            v = stack.pop()
            for w in graph.neighbors(v):
                if sides[w] is None:
                    sides[w] = 1 - sides[v]  # type: ignore[operator]
                    stack.append(w)
                elif sides[w] == sides[v]:
                    return None
    return Bipartition([s if s is not None else 0 for s in sides])
