"""Workload generators.

The paper has no experimental workloads; these generators provide the
graph families that the introduction motivates (bounded-degree networks
whose degree is independent of the network size) plus standard families
used by distributed-coloring evaluations:

* ``regular_bipartite_graph`` — Δ-regular 2-colored bipartite graphs,
  the setting of Sections 5–7.
* ``random_regular_graph`` — Δ-regular general graphs.
* ``erdos_renyi_graph`` — G(n, p).
* ``random_bipartite_graph`` — bipartite G(n_u, n_v, p).
* ``cycle_graph`` / ``path_graph`` — the Δ = 2 lower-bound family of
  Linial used for the log* n experiments.
* ``complete_graph`` / ``complete_bipartite_graph`` — extreme-degree
  stress cases.
* ``hypercube_graph``, ``grid_graph``, ``tree_graph``, ``power_law_graph``
  — additional topologies for the examples and benchmarks.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs.bipartite import Bipartition
from repro.graphs.core import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed if seed is not None else 0)


def cycle_graph(n: int) -> Graph:
    """A cycle on ``n >= 3`` nodes (Δ = 2)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """A path on ``n >= 1`` nodes."""
    if n < 1:
        raise ValueError("a path needs at least 1 node")
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def complete_graph(n: int) -> Graph:
    """The complete graph K_n."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph(n, edges)


def star_graph(leaves: int) -> Graph:
    """A star with one center (node 0) and ``leaves`` leaves."""
    return Graph(leaves + 1, [(0, i + 1) for i in range(leaves)])


def complete_bipartite_graph(n_left: int, n_right: int) -> Graph:
    """The complete bipartite graph K_{n_left, n_right}."""
    edges = [(i, n_left + j) for i in range(n_left) for j in range(n_right)]
    return Graph(n_left + n_right, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid graph (Δ <= 4)."""
    def index(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return Graph(rows * cols, edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube (Δ = dimension)."""
    n = 1 << dimension
    edges = []
    for v in range(n):
        for bit in range(dimension):
            w = v ^ (1 << bit)
            if v < w:
                edges.append((v, w))
    return Graph(n, edges)


def tree_graph(n: int, branching: int = 2, seed: Optional[int] = None) -> Graph:
    """A random tree on ``n`` nodes with maximum ``branching`` children per node."""
    if n < 1:
        raise ValueError("a tree needs at least 1 node")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    children = [0] * n
    available = [0]
    for v in range(1, n):
        parent = rng.choice(available)
        edges.append((parent, v))
        children[parent] += 1
        if children[parent] >= branching:
            available.remove(parent)
        available.append(v)
    return Graph(n, edges)


def regular_bipartite_graph(
    n_per_side: int, degree: int, seed: Optional[int] = None
) -> Tuple[Graph, Bipartition]:
    """A Δ-regular bipartite graph with ``n_per_side`` nodes on each side.

    Built as a union of ``degree`` edge-disjoint perfect matchings: with a
    random permutation σ of the left side and a random permutation π of
    the right side, matching ``k`` connects left node ``u`` to right node
    ``π((σ(u) + k) mod n)``.  Every node has degree exactly ``degree``.
    Returns the graph together with its bipartition; left nodes are
    ``0 .. n_per_side - 1`` and right nodes follow.
    """
    if degree > n_per_side:
        raise ValueError("degree cannot exceed the side size")
    rng = _rng(seed)
    sigma = list(range(n_per_side))
    pi = list(range(n_per_side))
    rng.shuffle(sigma)
    rng.shuffle(pi)
    edges: List[Tuple[int, int]] = []
    for k in range(degree):
        for u in range(n_per_side):
            edges.append((u, n_per_side + pi[(sigma[u] + k) % n_per_side]))
    graph = Graph(2 * n_per_side, edges)
    sides = [0] * n_per_side + [1] * n_per_side
    return graph, Bipartition(sides)


def random_bipartite_graph(
    n_left: int, n_right: int, p: float, seed: Optional[int] = None
) -> Tuple[Graph, Bipartition]:
    """A bipartite G(n_left, n_right, p) random graph with its bipartition."""
    rng = _rng(seed)
    edges = [
        (u, n_left + v)
        for u in range(n_left)
        for v in range(n_right)
        if rng.random() < p
    ]
    graph = Graph(n_left + n_right, edges)
    sides = [0] * n_left + [1] * n_right
    return graph, Bipartition(sides)


def random_regular_graph(n: int, degree: int, seed: Optional[int] = None) -> Graph:
    """A random Δ-regular simple graph (pairing model, via :mod:`networkx`)."""
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if degree == 0:
        return Graph(n, [])
    import networkx as nx

    nx_graph = nx.random_regular_graph(degree, n, seed=seed if seed is not None else 0)
    return Graph(n, [(u, v) for u, v in nx_graph.edges()])


def erdos_renyi_graph(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """An Erdős–Rényi G(n, p) random graph."""
    rng = _rng(seed)
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p]
    return Graph(n, edges)


def power_law_graph(n: int, attachment: int = 2, seed: Optional[int] = None) -> Graph:
    """A Barabási–Albert style preferential-attachment graph."""
    if attachment < 1 or attachment >= n:
        raise ValueError("attachment must be in [1, n)")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = []
    targets = list(range(attachment))
    repeated: List[int] = list(range(attachment))
    for v in range(attachment, n):
        chosen = set()
        while len(chosen) < attachment:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(v))
        for w in chosen:
            edges.append((w, v))
        repeated.extend(chosen)
        repeated.extend([v] * attachment)
    del targets
    return Graph(n, edges)


def graph_with_scrambled_ids(graph: Graph, seed: Optional[int] = None, id_space_factor: int = 4) -> Graph:
    """A copy of ``graph`` whose node identifiers are a random injection into a poly(n) space.

    Used by the log*-n experiments: identifier magnitudes (not just node
    counts) drive the number of color-reduction iterations of Linial's
    algorithm.
    """
    rng = _rng(seed)
    n = graph.num_nodes
    space = max(1, n * max(1, id_space_factor))
    ids = rng.sample(range(space), n)
    edges = [graph.edge_endpoints(e) for e in graph.edges()]
    return Graph(n, edges, node_ids=ids)


def list_edge_coloring_lists(
    graph: Graph,
    slack: float = 1.0,
    color_space: Optional[int] = None,
    seed: Optional[int] = None,
) -> Tuple[List[List[int]], int]:
    """Random color lists for a (degree+1)-style list edge coloring instance.

    Each edge ``e`` receives a list of ``max(1, ceil(slack * (deg(e) + 1)))``
    distinct colors drawn from ``{0, ..., color_space - 1}``.  With
    ``slack = 1`` this is exactly a (degree+1)-list instance.  Returns the
    lists (indexed by edge) and the color-space size used.

    The color space defaults to ``2 * max_degree`` (enough for 2Δ−1
    colorings) but never smaller than the largest list.
    """
    rng = _rng(seed)
    largest_needed = 0
    sizes = []
    for e in graph.edges():
        size = max(1, int(-(-slack * (graph.edge_degree(e) + 1) // 1)))
        sizes.append(size)
        largest_needed = max(largest_needed, size)
    if color_space is None:
        color_space = max(largest_needed, 2 * max(1, graph.max_degree))
    if color_space < largest_needed:
        raise ValueError("color_space too small for the requested slack")
    lists = [sorted(rng.sample(range(color_space), sizes[e])) for e in graph.edges()]
    return lists, color_space


def named_workloads(seed: int = 0) -> Sequence[Tuple[str, Graph]]:
    """A small catalogue of graphs used by the examples and smoke tests."""
    workloads: List[Tuple[str, Graph]] = [
        ("cycle-64", cycle_graph(64)),
        ("grid-8x8", grid_graph(8, 8)),
        ("hypercube-5", hypercube_graph(5)),
        ("random-regular-48-6", random_regular_graph(48, 6, seed=seed)),
        ("erdos-renyi-64", erdos_renyi_graph(64, 0.12, seed=seed)),
        ("tree-63", tree_graph(63, branching=3, seed=seed)),
    ]
    bipartite, _sides = regular_bipartite_graph(24, 6, seed=seed)
    workloads.append(("regular-bipartite-24-6", bipartite))
    return workloads
