"""Core graph data structures.

The simulator and the coloring algorithms need a compact, deterministic
graph representation with fast access to

* the neighbors of a node,
* the edges incident to a node,
* the endpoints and the *edge degree* of an edge (its degree in the line
  graph, ``deg(u) + deg(v) - 2`` as defined in Section 2 of the paper).

Nodes are integers ``0 .. n-1``.  Edges are integers ``0 .. m-1`` and are
stored with their endpoints normalized so that ``u < v``.  The class is
immutable after construction; subgraphs are expressed as edge subsets
(sets of edge indices) so that edge identities — and therefore colors,
lists and orientations keyed by edge index — survive any decomposition.

Storage is CSR-style (compressed sparse row): adjacency and incident-edge
information live in flat arrays indexed by per-node offsets, endpoint
lookups go through two flat endpoint arrays, and global quantities
(``max_degree``, the edge-identifier base) are computed once at
construction instead of on every call.  The per-edge *adjacent edge*
lists (the line-graph rows) are flattened lazily on first use, so hot
paths like list-availability queries cost one slice instead of two list
copies.  :class:`EdgeSubsetView` exposes the same read API restricted to
an edge subset **without building a new Graph** — the decompositions of
Sections 5–7 run entirely on views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class Graph:
    """An undirected simple graph with indexed nodes and edges.

    Internal layout (all built once in ``__init__``):

    * ``_edges`` — tuple of normalized ``(u, v)`` endpoint pairs.
    * ``_edge_u`` / ``_edge_v`` — flat endpoint arrays (``u < v``).
    * ``_xadj`` — per-node offsets into the flat adjacency arrays
      (``_xadj[v] .. _xadj[v+1]`` is node ``v``'s row).
    * ``_adj`` — flat neighbor array, each row sorted by neighbor.
    * ``_inc`` — flat incident-edge array aligned with ``_adj``.
    * ``_eadj_off`` / ``_eadj`` — lazy flat adjacent-edge (line-graph row)
      arrays, built on first :meth:`adjacent_edges` call.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Build a graph.

        Args:
            num_nodes: number of nodes; nodes are ``0 .. num_nodes - 1``.
            edges: iterable of ``(u, v)`` pairs with ``u != v``; duplicates
                (in either orientation) are rejected.
            node_ids: optional unique identifiers (the ``poly(n)`` IDs of
                the LOCAL model).  Defaults to ``0 .. num_nodes - 1``.
        """
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        normalized: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            normalized.append(key)
        if node_ids is not None:
            ids = list(node_ids)
            if len(ids) != num_nodes:
                raise ValueError("node_ids must have one entry per node")
            if len(set(ids)) != num_nodes:
                raise ValueError("node_ids must be unique")
        else:
            ids = None
        self._finalize(num_nodes, normalized, ids)

    @classmethod
    def _from_normalized(
        cls,
        num_nodes: int,
        normalized: List[Tuple[int, int]],
        node_ids: Optional[List[int]],
    ) -> "Graph":
        """Fast internal constructor for edges already normalized, in-range
        and duplicate-free (subgraphs, line graphs)."""
        graph = cls.__new__(cls)
        graph._finalize(num_nodes, normalized, node_ids)
        return graph

    def _finalize(
        self,
        num_nodes: int,
        normalized: List[Tuple[int, int]],
        node_ids: Optional[List[int]],
    ) -> None:
        self._num_nodes = num_nodes
        self._edges: List[Tuple[int, int]] = normalized
        m = len(normalized)
        edge_u = [0] * m
        edge_v = [0] * m
        degrees = [0] * num_nodes
        for index, (u, v) in enumerate(normalized):
            edge_u[index] = u
            edge_v[index] = v
            degrees[u] += 1
            degrees[v] += 1
        self._edge_u = edge_u
        self._edge_v = edge_v
        self._degrees = degrees
        self._max_degree = max(degrees) if num_nodes else 0

        # CSR adjacency: per-node (neighbor, edge) rows sorted by neighbor.
        rows: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
        for index in range(m):
            u = edge_u[index]
            v = edge_v[index]
            rows[u].append((v, index))
            rows[v].append((u, index))
        xadj = [0] * (num_nodes + 1)
        adj: List[int] = []
        inc: List[int] = []
        for v in range(num_nodes):
            row = rows[v]
            row.sort()
            for w, index in row:
                adj.append(w)
                inc.append(index)
            xadj[v + 1] = len(adj)
        self._xadj = xadj
        self._adj = adj
        self._inc = inc

        if node_ids is None:
            self._node_ids = list(range(num_nodes))
        else:
            self._node_ids = node_ids
        self._edge_id_base = (max(self._node_ids) + 1) if self._node_ids else 1
        self._edge_index: Dict[Tuple[int, int], int] = {
            key: index for index, key in enumerate(normalized)
        }
        # Lazy caches.
        self._max_edge_degree: Optional[int] = None
        self._eadj_off: Optional[List[int]] = None
        self._eadj: Optional[List[int]] = None
        self._rev_port: Optional[List[int]] = None
        self._rev_slot: Optional[List[int]] = None
        self._endpoints_np = None

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    def nodes(self) -> range:
        """Iterate node indices."""
        return range(self._num_nodes)

    def node_id(self, v: int) -> int:
        """The unique identifier of node ``v`` (LOCAL model identifier)."""
        return self._node_ids[v]

    @property
    def node_ids(self) -> List[int]:
        """All node identifiers, indexed by node."""
        return list(self._node_ids)

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return self._degrees[v]

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbors of node ``v``."""
        return self._adj[self._xadj[v] : self._xadj[v + 1]]

    def adjacency_csr(self) -> Tuple[List[int], List[int]]:
        """The flat adjacency arrays ``(xadj, adj)``.

        Node ``v``'s neighbors are ``adj[xadj[v] : xadj[v+1]]``, sorted.
        The arrays are shared, not copied — callers must not mutate them.
        """
        return self._xadj, self._adj

    def incidence_csr(self) -> Tuple[List[int], List[int]]:
        """The flat incident-edge arrays ``(xadj, inc)``, aligned with
        :meth:`adjacency_csr`.  Shared, not copied — do not mutate."""
        return self._xadj, self._inc

    def _build_reverse_ports(self) -> None:
        """Build the flat reverse-slot array in two passes over the CSR rows.

        A *slot* is a position in the flat adjacency array: slot
        ``xadj[v] + p`` is port ``p`` of node ``v``.  For every slot the
        reverse slot is the position of the same edge in the other
        endpoint's row — i.e. where a message sent by ``v`` on port ``p``
        lands in the receiver's port space.
        """
        xadj = self._xadj
        adj = self._adj
        inc = self._inc
        edge_u = self._edge_u
        m = len(self._edges)
        # Pass 1: per edge, the slot in each endpoint's row.
        slot_lo = [0] * m  # slot in the row of the lower endpoint (u < v)
        slot_hi = [0] * m  # slot in the row of the higher endpoint
        for v in range(self._num_nodes):
            for i in range(xadj[v], xadj[v + 1]):
                e = inc[i]
                if edge_u[e] == v:
                    slot_lo[e] = i
                else:
                    slot_hi[e] = i
        # Pass 2: cross-link the two slots of every edge.
        rev_slot = [0] * len(adj)
        for v in range(self._num_nodes):
            for i in range(xadj[v], xadj[v + 1]):
                e = inc[i]
                rev_slot[i] = slot_hi[e] if edge_u[e] == v else slot_lo[e]
        self._rev_slot = rev_slot

    def reverse_port_csr(self) -> List[int]:
        """The flat reverse-port array aligned with :meth:`adjacency_csr`.

        ``rev[xadj[v] + p]`` is the port of ``v`` in the row of the
        neighbor ``w = adj[xadj[v] + p]`` — the port on which ``w``
        receives what ``v`` sends on port ``p``.  Derived lazily from the
        reverse-slot array (which the simulator shares); shared, not
        copied — do not mutate.
        """
        if self._rev_port is None:
            rev_slot = self.reverse_slot_csr()
            xadj = self._xadj
            adj = self._adj
            self._rev_port = [rev_slot[i] - xadj[adj[i]] for i in range(len(adj))]
        return self._rev_port

    def reverse_slot_csr(self) -> List[int]:
        """The flat reverse-*slot* array aligned with :meth:`adjacency_csr`.

        ``rev_slot[i]`` is the absolute adjacency-array position of the
        opposite direction of slot ``i``: ``rev_slot[xadj[v] + p] ==
        xadj[w] + reverse_port_csr()[xadj[v] + p]`` with ``w`` the
        neighbor on port ``p``.  The message-passing simulator uses this
        to index its flat inbox buffer directly.  Built lazily; shared,
        not copied — do not mutate.
        """
        if self._rev_slot is None:
            self._build_reverse_ports()
        return self._rev_slot  # type: ignore[return-value]

    @property
    def max_degree(self) -> int:
        """Maximum node degree Δ (0 for an empty graph); precomputed."""
        return self._max_degree

    # ------------------------------------------------------------------ edges
    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def edges(self) -> range:
        """Iterate edge indices."""
        return range(len(self._edges))

    def edge_endpoints(self, e: int) -> Tuple[int, int]:
        """Endpoints ``(u, v)`` of edge ``e`` with ``u < v``."""
        return self._edges[e]

    def endpoint_arrays(self) -> Tuple[List[int], List[int]]:
        """The flat endpoint arrays ``(edge_u, edge_v)`` with ``u < v``.

        Shared, not copied — callers must not mutate them.  Hot loops use
        these instead of per-edge :meth:`edge_endpoints` tuple unpacking.
        """
        return self._edge_u, self._edge_v

    def endpoint_arrays_np(self):
        """Numpy ``int64`` copies of the endpoint arrays, built once.

        The vectorized orientation engine gathers per-instance endpoint
        arrays with one fancy-index instead of a python loop per call;
        the arrays are cached on the graph so repeated orientation calls
        on subsets of the same host graph share them.  Requires numpy
        (the caller guards on availability).  Shared — do not mutate.
        """
        if self._endpoints_np is None:
            import numpy as np

            self._endpoints_np = (
                np.asarray(self._edge_u, dtype=np.int64),
                np.asarray(self._edge_v, dtype=np.int64),
            )
        return self._endpoints_np

    def edge_index(self, u: int, v: int) -> int:
        """Edge index of the edge between ``u`` and ``v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        key = (u, v) if u < v else (v, u)
        return self._edge_index[key]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge between ``u`` and ``v`` exists."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_index

    def incident_edges(self, v: int) -> List[int]:
        """Edge indices incident to node ``v`` (sorted by neighbor)."""
        return self._inc[self._xadj[v] : self._xadj[v + 1]]

    def other_endpoint(self, e: int, v: int) -> int:
        """The endpoint of edge ``e`` that is not ``v``."""
        u, w = self._edges[e]
        if v == u:
            return w
        if v == w:
            return u
        raise ValueError(f"node {v} is not an endpoint of edge {e}")

    def edge_degree(self, e: int) -> int:
        """Degree of edge ``e`` in the line graph: deg(u) + deg(v) - 2."""
        return self._degrees[self._edge_u[e]] + self._degrees[self._edge_v[e]] - 2

    @property
    def max_edge_degree(self) -> int:
        """Maximum edge degree (0 for an edgeless graph); cached."""
        if self._max_edge_degree is None:
            degrees = self._degrees
            self._max_edge_degree = max(
                (
                    degrees[u] + degrees[v] - 2
                    for u, v in zip(self._edge_u, self._edge_v)
                ),
                default=0,
            )
        return self._max_edge_degree

    def _edge_adjacency(self) -> Tuple[List[int], List[int]]:
        """Flat line-graph rows ``(offsets, flat)``, built once on demand."""
        if self._eadj is None:
            offsets = [0] * (len(self._edges) + 1)
            flat: List[int] = []
            inc = self._inc
            xadj = self._xadj
            for e in range(len(self._edges)):
                u = self._edge_u[e]
                v = self._edge_v[e]
                for f in inc[xadj[u] : xadj[u + 1]]:
                    if f != e:
                        flat.append(f)
                for f in inc[xadj[v] : xadj[v + 1]]:
                    if f != e:
                        flat.append(f)
                offsets[e + 1] = len(flat)
            self._eadj_off = offsets
            self._eadj = flat
        return self._eadj_off, self._eadj  # type: ignore[return-value]

    def adjacent_edges(self, e: int) -> List[int]:
        """Edge indices sharing an endpoint with ``e`` (excluding ``e``)."""
        offsets, flat = self._edge_adjacency()
        return flat[offsets[e] : offsets[e + 1]]

    def edge_adjacency_csr(self) -> Tuple[List[int], List[int]]:
        """The flat adjacent-edge arrays ``(offsets, flat)``.

        Edge ``e``'s adjacent edges are ``flat[offsets[e] : offsets[e+1]]``.
        Shared, not copied — do not mutate.
        """
        return self._edge_adjacency()

    def edge_id(self, e: int) -> int:
        """A unique identifier for edge ``e`` derived from its endpoint ids.

        The identifier is ``min_id * P + max_id`` where ``P`` is one more
        than the largest node identifier (precomputed at construction), so
        it fits in O(log n) bits and both endpoints can compute it locally.
        """
        ids = self._node_ids
        a = ids[self._edge_u[e]]
        b = ids[self._edge_v[e]]
        if a > b:
            a, b = b, a
        return a * self._edge_id_base + b

    # -------------------------------------------------------------- subgraphs
    def edge_subgraph_degrees(self, edge_set: Iterable[int]) -> List[int]:
        """Node degrees restricted to the edges in ``edge_set``."""
        degrees = [0] * self._num_nodes
        edge_u = self._edge_u
        edge_v = self._edge_v
        for e in edge_set:
            degrees[edge_u[e]] += 1
            degrees[edge_v[e]] += 1
        return degrees

    def edge_degree_within(
        self, e: int, edge_set: Set[int], degrees: Optional[List[int]] = None
    ) -> int:
        """Edge degree of ``e`` counting only adjacent edges in ``edge_set``.

        ``e`` itself does not need to be in ``edge_set``.  If ``degrees``
        (node degrees within ``edge_set``) is supplied it is used instead
        of recomputing.
        """
        u = self._edge_u[e]
        v = self._edge_v[e]
        if degrees is not None:
            count = degrees[u] + degrees[v]
            if e in edge_set:
                count -= 2
            return count
        count = 0
        inc = self._inc
        xadj = self._xadj
        for f in inc[xadj[u] : xadj[u + 1]]:
            if f != e and f in edge_set:
                count += 1
        for f in inc[xadj[v] : xadj[v + 1]]:
            if f != e and f in edge_set:
                count += 1
        return count

    def subgraph_from_edges(self, edge_set: Iterable[int]) -> "Graph":
        """A new :class:`Graph` over the same node set with only the given edges.

        Prefer :class:`EdgeSubsetView` (:meth:`edge_subset_view`) on hot
        paths — it exposes the same read API without copying the graph.
        """
        return Graph._from_normalized(
            self._num_nodes,
            [self._edges[e] for e in sorted(set(edge_set))],
            self._node_ids,
        )

    def edge_subset_view(self, edge_set: Iterable[int]) -> "EdgeSubsetView":
        """A zero-copy :class:`EdgeSubsetView` of the given edges."""
        return EdgeSubsetView(self, edge_set)

    def line_graph(self) -> "Graph":
        """The line graph: one node per edge, edges between adjacent edges.

        The node identifiers of the line graph are the edge identifiers of
        this graph (unique, O(log n)-bit values).
        """
        line_edges: List[Tuple[int, int]] = []
        inc = self._inc
        xadj = self._xadj
        for v in range(self._num_nodes):
            incident = inc[xadj[v] : xadj[v + 1]]
            for i in range(len(incident)):
                a = incident[i]
                for j in range(i + 1, len(incident)):
                    b = incident[j]
                    line_edges.append((a, b) if a < b else (b, a))
        # Two edges can share at most one endpoint in a simple graph, so no duplicates.
        return Graph._from_normalized(
            len(self._edges), line_edges, [self.edge_id(e) for e in self.edges()]
        )

    # ------------------------------------------------------------------ misc
    def connected_components(self) -> List[List[int]]:
        """Connected components as lists of node indices."""
        seen = [False] * self._num_nodes
        components: List[List[int]] = []
        adj = self._adj
        xadj = self._xadj
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for w in adj[xadj[v] : xadj[v + 1]]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(component))
        return components

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(n={self._num_nodes}, m={len(self._edges)}, max_degree={self.max_degree})"


class EdgeSubsetView:
    """A read-only view of a :class:`Graph` restricted to an edge subset.

    The recursive decompositions of Sections 5–7 constantly ask for node
    degrees, neighbors and edge degrees *within the still-uncolored (or
    per-part) edge set*.  Building a fresh :class:`Graph` per subset —
    what the seed implementation did — re-validates, re-normalizes and
    re-sorts every edge; the view instead keeps one membership array and
    a degree array over the host graph and answers the same queries
    directly, so constructing it is a single O(|subset|) pass and no edge
    is ever re-indexed (colors, lists and orientations keyed by edge
    index remain valid verbatim).

    The view is duck-type compatible with the read API the defective
    coloring and greedy stages use (``num_nodes`` / ``nodes()`` /
    ``node_id`` / ``degree`` / ``neighbors`` / ``max_degree`` /
    ``num_edges`` / ``incident_edges`` / ``adjacency_csr``), and it adds
    incremental maintenance: :meth:`remove_edge` deletes an edge from the
    subset in O(1) degree updates (membership and degree queries stay
    O(1); the cached restricted adjacency is invalidated, so interleave
    removals with ``neighbors``-style queries sparingly).

    Restricted adjacency rows are materialized lazily (one pass over the
    host adjacency, cached until the next :meth:`remove_edge`), so
    read-heavy stages pay the filtering cost once, not per query.
    """

    def __init__(self, graph: Graph, edge_set: Iterable[int]) -> None:
        self._graph = graph
        present = bytearray(graph.num_edges)
        degrees = [0] * graph.num_nodes
        edge_u, edge_v = graph.endpoint_arrays()
        count = 0
        for e in edge_set:
            if not present[e]:
                present[e] = 1
                count += 1
                degrees[edge_u[e]] += 1
                degrees[edge_v[e]] += 1
        self._present = present
        self._degrees = degrees
        self._num_edges = count
        # Lazily built restricted CSR adjacency (invalidated by removals).
        self._sub_xadj: Optional[List[int]] = None
        self._sub_adj: Optional[List[int]] = None
        self._sub_inc: Optional[List[int]] = None

    # ------------------------------------------------------------- membership
    @property
    def graph(self) -> Graph:
        """The host graph."""
        return self._graph

    def __contains__(self, e: int) -> bool:
        return bool(self._present[e])

    def __len__(self) -> int:
        return self._num_edges

    def edge_list(self) -> List[int]:
        """The subset's edge indices in ascending order."""
        present = self._present
        return [e for e in range(len(present)) if present[e]]

    def remove_edge(self, e: int) -> None:
        """Remove edge ``e`` from the subset (no-op if absent)."""
        if not self._present[e]:
            return
        self._present[e] = 0
        self._num_edges -= 1
        edge_u, edge_v = self._graph.endpoint_arrays()
        self._degrees[edge_u[e]] -= 1
        self._degrees[edge_v[e]] -= 1
        self._sub_xadj = None
        self._sub_adj = None
        self._sub_inc = None

    def remove_edges(self, edges: Iterable[int]) -> None:
        """Remove every edge of ``edges`` from the subset."""
        for e in edges:
            self.remove_edge(e)

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        """Number of nodes (the host graph's node set)."""
        return self._graph.num_nodes

    def nodes(self) -> range:
        """Iterate node indices."""
        return self._graph.nodes()

    def node_id(self, v: int) -> int:
        """The identifier of node ``v`` (shared with the host graph)."""
        return self._graph.node_id(v)

    @property
    def node_ids(self) -> List[int]:
        """All node identifiers, indexed by node."""
        return self._graph.node_ids

    def degree(self, v: int) -> int:
        """Degree of ``v`` counting only subset edges."""
        return self._degrees[v]

    @property
    def node_degrees(self) -> List[int]:
        """Degrees of all nodes within the subset (shared; do not mutate)."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximum node degree within the subset."""
        return max(self._degrees) if self._degrees else 0

    def _restricted_csr(self) -> Tuple[List[int], List[int], List[int]]:
        if self._sub_adj is None:
            graph = self._graph
            xadj, adj = graph.adjacency_csr()
            _, inc = graph.incidence_csr()
            present = self._present
            if len(adj) >= 256:
                try:
                    import numpy as np
                except ImportError:
                    np = None
                if np is not None:
                    # Vectorized filter (same lists come out): keep the
                    # slots whose edge is present, and read the restricted
                    # row boundaries off the running count of kept slots.
                    inc_np = np.asarray(inc, dtype=np.int64)
                    keep = np.frombuffer(present, dtype=np.uint8).astype(bool)[inc_np]
                    csum = np.zeros(len(adj) + 1, dtype=np.int64)
                    np.cumsum(keep, out=csum[1:])
                    self._sub_xadj = csum[np.asarray(xadj, dtype=np.int64)].tolist()
                    self._sub_adj = np.asarray(adj, dtype=np.int64)[keep].tolist()
                    self._sub_inc = inc_np[keep].tolist()
                    return self._sub_xadj, self._sub_adj, self._sub_inc
            sub_xadj = [0] * (graph.num_nodes + 1)
            sub_adj: List[int] = []
            sub_inc: List[int] = []
            for v in range(graph.num_nodes):
                for i in range(xadj[v], xadj[v + 1]):
                    f = inc[i]
                    if present[f]:
                        sub_adj.append(adj[i])
                        sub_inc.append(f)
                sub_xadj[v + 1] = len(sub_adj)
            self._sub_xadj = sub_xadj
            self._sub_adj = sub_adj
            self._sub_inc = sub_inc
        return self._sub_xadj, self._sub_adj, self._sub_inc  # type: ignore[return-value]

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbors of ``v`` along subset edges."""
        sub_xadj, sub_adj, _ = self._restricted_csr()
        return sub_adj[sub_xadj[v] : sub_xadj[v + 1]]

    def adjacency_csr(self) -> Tuple[List[int], List[int]]:
        """Restricted flat adjacency ``(xadj, adj)``; shared, do not mutate."""
        sub_xadj, sub_adj, _ = self._restricted_csr()
        return sub_xadj, sub_adj

    def incident_edges(self, v: int) -> List[int]:
        """Subset edges incident to ``v`` (sorted by neighbor)."""
        sub_xadj, _, sub_inc = self._restricted_csr()
        return sub_inc[sub_xadj[v] : sub_xadj[v + 1]]

    # ------------------------------------------------------------------ edges
    @property
    def num_edges(self) -> int:
        """Number of subset edges."""
        return self._num_edges

    def edge_endpoints(self, e: int) -> Tuple[int, int]:
        """Endpoints of edge ``e`` (host graph indexing)."""
        return self._graph.edge_endpoints(e)

    def edge_degree(self, e: int) -> int:
        """Edge degree of ``e`` within the subset (``e`` need not belong)."""
        edge_u, edge_v = self._graph.endpoint_arrays()
        count = self._degrees[edge_u[e]] + self._degrees[edge_v[e]]
        if self._present[e]:
            count -= 2
        return count

    @property
    def max_edge_degree(self) -> int:
        """Maximum edge degree within the subset (matches the host
        :class:`Graph` property)."""
        edge_u, edge_v = self._graph.endpoint_arrays()
        degrees = self._degrees
        present = self._present
        best = 0
        for e in range(len(present)):
            if present[e]:
                d = degrees[edge_u[e]] + degrees[edge_v[e]] - 2
                if d > best:
                    best = d
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EdgeSubsetView(m={self._num_edges} of {self._graph.num_edges})"


@dataclass(frozen=True)
class Arc:
    """A directed edge ``tail -> head`` of a :class:`DirectedGraph`."""

    tail: int
    head: int


class DirectedGraph:
    """A directed multigraph used by the generalized token dropping game.

    Arcs are indexed ``0 .. m-1``.  Parallel arcs and opposite arcs are
    allowed (the token dropping game of Section 4 is defined on general
    directed graphs); self-loops are not.  Tails and heads are stored in
    flat arrays; :class:`Arc` objects are materialized on demand.
    """

    def __init__(self, num_nodes: int, arcs: Iterable[Tuple[int, int]]) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._tails: List[int] = []
        self._heads: List[int] = []
        # Sparse adjacency: only nodes that actually touch an arc get an
        # entry, so constructing a game graph costs O(arcs), not O(n).
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        for tail, head in arcs:
            if tail == head:
                raise ValueError(f"self-loop at node {tail} is not allowed")
            if not (0 <= tail < num_nodes and 0 <= head < num_nodes):
                raise ValueError(f"arc ({tail}, {head}) out of range")
            index = len(self._tails)
            self._tails.append(tail)
            self._heads.append(head)
            self._out.setdefault(tail, []).append(index)
            self._in.setdefault(head, []).append(index)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return len(self._tails)

    def nodes(self) -> range:
        """Iterate node indices."""
        return range(self._num_nodes)

    def arcs(self) -> range:
        """Iterate arc indices."""
        return range(len(self._tails))

    def arc(self, index: int) -> Arc:
        """The arc with the given index."""
        return Arc(self._tails[index], self._heads[index])

    def arc_tail(self, index: int) -> int:
        """Tail node of the arc with the given index."""
        return self._tails[index]

    def arc_head(self, index: int) -> int:
        """Head node of the arc with the given index."""
        return self._heads[index]

    def arc_arrays(self) -> Tuple[List[int], List[int]]:
        """The flat ``(tails, heads)`` arrays (shared, not copied — do not
        mutate)."""
        return self._tails, self._heads

    def out_arcs(self, v: int) -> List[int]:
        """Indices of arcs leaving ``v``."""
        return list(self._out.get(v, ()))

    def in_arcs(self, v: int) -> List[int]:
        """Indices of arcs entering ``v``."""
        return list(self._in.get(v, ()))

    def in_arc_map(self) -> Dict[int, List[int]]:
        """In-arc index lists keyed by head node (shared — do not mutate).

        Nodes without incoming arcs are absent.
        """
        return self._in

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        return len(self._out.get(v, ()))

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        return len(self._in.get(v, ()))

    def degree(self, v: int) -> int:
        """Total (undirected) degree of ``v``."""
        return len(self._out.get(v, ())) + len(self._in.get(v, ()))

    def undirected_edge_degree(self, index: int) -> int:
        """Degree of the arc in the underlying undirected (multi)graph.

        This matches the paper's ``deg_G(e)`` convention for directed
        graphs: degrees are taken in the undirected version of the graph.
        """
        return self.degree(self._tails[index]) + self.degree(self._heads[index]) - 2

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DirectedGraph(n={self._num_nodes}, m={len(self._tails)})"


def graph_from_networkx(nx_graph) -> Graph:
    """Convert a :mod:`networkx` graph to a :class:`Graph`.

    Node labels are relabelled to ``0 .. n-1`` in sorted label order; the
    original labels are hashed into the node-id space only when they are
    integers, otherwise consecutive identifiers are used.
    """
    labels = sorted(nx_graph.nodes())
    index_of = {label: i for i, label in enumerate(labels)}
    edges = [(index_of[u], index_of[v]) for u, v in nx_graph.edges()]
    node_ids: Optional[List[int]] = None
    if labels and all(isinstance(label, int) for label in labels):
        node_ids = list(labels)
    return Graph(len(labels), edges, node_ids=node_ids)


def iter_edge_pairs(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(e, u, v)`` for every edge of ``graph`` with ``u < v``."""
    for e in graph.edges():
        u, v = graph.edge_endpoints(e)
        yield e, u, v
