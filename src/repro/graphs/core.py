"""Core graph data structures.

The simulator and the coloring algorithms need a compact, deterministic
graph representation with fast access to

* the neighbors of a node,
* the edges incident to a node,
* the endpoints and the *edge degree* of an edge (its degree in the line
  graph, ``deg(u) + deg(v) - 2`` as defined in Section 2 of the paper).

Nodes are integers ``0 .. n-1``.  Edges are integers ``0 .. m-1`` and are
stored with their endpoints normalized so that ``u < v``.  The class is
immutable after construction; subgraphs are expressed as edge subsets
(sets of edge indices) so that edge identities — and therefore colors,
lists and orientations keyed by edge index — survive any decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class Graph:
    """An undirected simple graph with indexed nodes and edges."""

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Build a graph.

        Args:
            num_nodes: number of nodes; nodes are ``0 .. num_nodes - 1``.
            edges: iterable of ``(u, v)`` pairs with ``u != v``; duplicates
                (in either orientation) are rejected.
            node_ids: optional unique identifiers (the ``poly(n)`` IDs of
                the LOCAL model).  Defaults to ``0 .. num_nodes - 1``.
        """
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        normalized: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            normalized.append(key)
        self._edges: List[Tuple[int, int]] = normalized
        self._adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        self._incident: List[List[int]] = [[] for _ in range(num_nodes)]
        for index, (u, v) in enumerate(self._edges):
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
            self._incident[u].append(index)
            self._incident[v].append(index)
        for v in range(num_nodes):
            order = sorted(range(len(self._adjacency[v])), key=lambda i: self._adjacency[v][i])
            self._adjacency[v] = [self._adjacency[v][i] for i in order]
            self._incident[v] = [self._incident[v][i] for i in order]
        if node_ids is None:
            self._node_ids = list(range(num_nodes))
        else:
            ids = list(node_ids)
            if len(ids) != num_nodes:
                raise ValueError("node_ids must have one entry per node")
            if len(set(ids)) != num_nodes:
                raise ValueError("node_ids must be unique")
            self._node_ids = ids
        self._edge_index: Dict[Tuple[int, int], int] = {
            key: index for index, key in enumerate(self._edges)
        }

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    def nodes(self) -> range:
        """Iterate node indices."""
        return range(self._num_nodes)

    def node_id(self, v: int) -> int:
        """The unique identifier of node ``v`` (LOCAL model identifier)."""
        return self._node_ids[v]

    @property
    def node_ids(self) -> List[int]:
        """All node identifiers, indexed by node."""
        return list(self._node_ids)

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self._adjacency[v])

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbors of node ``v``."""
        return list(self._adjacency[v])

    @property
    def max_degree(self) -> int:
        """Maximum node degree Δ (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0
        return max(len(adj) for adj in self._adjacency)

    # ------------------------------------------------------------------ edges
    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def edges(self) -> range:
        """Iterate edge indices."""
        return range(len(self._edges))

    def edge_endpoints(self, e: int) -> Tuple[int, int]:
        """Endpoints ``(u, v)`` of edge ``e`` with ``u < v``."""
        return self._edges[e]

    def edge_index(self, u: int, v: int) -> int:
        """Edge index of the edge between ``u`` and ``v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        key = (u, v) if u < v else (v, u)
        return self._edge_index[key]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge between ``u`` and ``v`` exists."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_index

    def incident_edges(self, v: int) -> List[int]:
        """Edge indices incident to node ``v`` (sorted by neighbor)."""
        return list(self._incident[v])

    def other_endpoint(self, e: int, v: int) -> int:
        """The endpoint of edge ``e`` that is not ``v``."""
        u, w = self._edges[e]
        if v == u:
            return w
        if v == w:
            return u
        raise ValueError(f"node {v} is not an endpoint of edge {e}")

    def edge_degree(self, e: int) -> int:
        """Degree of edge ``e`` in the line graph: deg(u) + deg(v) - 2."""
        u, v = self._edges[e]
        return self.degree(u) + self.degree(v) - 2

    @property
    def max_edge_degree(self) -> int:
        """Maximum edge degree (0 for an edgeless graph)."""
        if not self._edges:
            return 0
        return max(self.edge_degree(e) for e in self.edges())

    def adjacent_edges(self, e: int) -> List[int]:
        """Edge indices sharing an endpoint with ``e`` (excluding ``e``)."""
        u, v = self._edges[e]
        result = [f for f in self._incident[u] if f != e]
        result.extend(f for f in self._incident[v] if f != e)
        return result

    def edge_id(self, e: int) -> int:
        """A unique identifier for edge ``e`` derived from its endpoint ids.

        The identifier is ``min_id * P + max_id`` where ``P`` is one more
        than the largest node identifier, so it fits in O(log n) bits and
        both endpoints can compute it locally.
        """
        u, v = self._edges[e]
        base = max(self._node_ids) + 1 if self._node_ids else 1
        a, b = sorted((self._node_ids[u], self._node_ids[v]))
        return a * base + b

    # -------------------------------------------------------------- subgraphs
    def edge_subgraph_degrees(self, edge_set: Set[int]) -> List[int]:
        """Node degrees restricted to the edges in ``edge_set``."""
        degrees = [0] * self._num_nodes
        for e in edge_set:
            u, v = self._edges[e]
            degrees[u] += 1
            degrees[v] += 1
        return degrees

    def edge_degree_within(self, e: int, edge_set: Set[int], degrees: Optional[List[int]] = None) -> int:
        """Edge degree of ``e`` counting only adjacent edges in ``edge_set``.

        ``e`` itself does not need to be in ``edge_set``.  If ``degrees``
        (node degrees within ``edge_set``) is supplied it is used instead
        of recomputing.
        """
        u, v = self._edges[e]
        if degrees is not None:
            count = degrees[u] + degrees[v]
            if e in edge_set:
                count -= 2
            return count
        count = 0
        for f in self._incident[u]:
            if f != e and f in edge_set:
                count += 1
        for f in self._incident[v]:
            if f != e and f in edge_set:
                count += 1
        return count

    def subgraph_from_edges(self, edge_set: Iterable[int]) -> "Graph":
        """A new :class:`Graph` over the same node set with only the given edges."""
        return Graph(
            self._num_nodes,
            [self._edges[e] for e in sorted(set(edge_set))],
            node_ids=self._node_ids,
        )

    def line_graph(self) -> "Graph":
        """The line graph: one node per edge, edges between adjacent edges.

        The node identifiers of the line graph are the edge identifiers of
        this graph (unique, O(log n)-bit values).
        """
        line_edges: List[Tuple[int, int]] = []
        for v in range(self._num_nodes):
            incident = self._incident[v]
            for i in range(len(incident)):
                for j in range(i + 1, len(incident)):
                    a, b = incident[i], incident[j]
                    line_edges.append((a, b) if a < b else (b, a))
        # Two edges can share at most one endpoint in a simple graph, so no duplicates.
        return Graph(len(self._edges), line_edges, node_ids=[self.edge_id(e) for e in self.edges()])

    # ------------------------------------------------------------------ misc
    def connected_components(self) -> List[List[int]]:
        """Connected components as lists of node indices."""
        seen = [False] * self._num_nodes
        components: List[List[int]] = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for w in self._adjacency[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(component))
        return components

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(n={self._num_nodes}, m={len(self._edges)}, max_degree={self.max_degree})"


@dataclass(frozen=True)
class Arc:
    """A directed edge ``tail -> head`` of a :class:`DirectedGraph`."""

    tail: int
    head: int


class DirectedGraph:
    """A directed multigraph used by the generalized token dropping game.

    Arcs are indexed ``0 .. m-1``.  Parallel arcs and opposite arcs are
    allowed (the token dropping game of Section 4 is defined on general
    directed graphs); self-loops are not.
    """

    def __init__(self, num_nodes: int, arcs: Iterable[Tuple[int, int]]) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._arcs: List[Arc] = []
        self._out: List[List[int]] = [[] for _ in range(num_nodes)]
        self._in: List[List[int]] = [[] for _ in range(num_nodes)]
        for tail, head in arcs:
            if tail == head:
                raise ValueError(f"self-loop at node {tail} is not allowed")
            if not (0 <= tail < num_nodes and 0 <= head < num_nodes):
                raise ValueError(f"arc ({tail}, {head}) out of range")
            index = len(self._arcs)
            self._arcs.append(Arc(tail, head))
            self._out[tail].append(index)
            self._in[head].append(index)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of arcs."""
        return len(self._arcs)

    def nodes(self) -> range:
        """Iterate node indices."""
        return range(self._num_nodes)

    def arcs(self) -> range:
        """Iterate arc indices."""
        return range(len(self._arcs))

    def arc(self, index: int) -> Arc:
        """The arc with the given index."""
        return self._arcs[index]

    def out_arcs(self, v: int) -> List[int]:
        """Indices of arcs leaving ``v``."""
        return list(self._out[v])

    def in_arcs(self, v: int) -> List[int]:
        """Indices of arcs entering ``v``."""
        return list(self._in[v])

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total (undirected) degree of ``v``."""
        return len(self._out[v]) + len(self._in[v])

    def undirected_edge_degree(self, index: int) -> int:
        """Degree of the arc in the underlying undirected (multi)graph.

        This matches the paper's ``deg_G(e)`` convention for directed
        graphs: degrees are taken in the undirected version of the graph.
        """
        arc = self._arcs[index]
        return self.degree(arc.tail) + self.degree(arc.head) - 2

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DirectedGraph(n={self._num_nodes}, m={len(self._arcs)})"


def graph_from_networkx(nx_graph) -> Graph:
    """Convert a :mod:`networkx` graph to a :class:`Graph`.

    Node labels are relabelled to ``0 .. n-1`` in sorted label order; the
    original labels are hashed into the node-id space only when they are
    integers, otherwise consecutive identifiers are used.
    """
    labels = sorted(nx_graph.nodes())
    index_of = {label: i for i, label in enumerate(labels)}
    edges = [(index_of[u], index_of[v]) for u, v in nx_graph.edges()]
    node_ids: Optional[List[int]] = None
    if labels and all(isinstance(label, int) for label in labels):
        node_ids = list(labels)
    return Graph(len(labels), edges, node_ids=node_ids)


def iter_edge_pairs(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(e, u, v)`` for every edge of ``graph`` with ``u < v``."""
    for e in graph.edges():
        u, v = graph.edge_endpoints(e)
        yield e, u, v
