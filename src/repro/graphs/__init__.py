"""Graph substrate: static graphs, directed graphs, generators, bipartitions."""

from repro.graphs.core import DirectedGraph, Graph
from repro.graphs.bipartite import Bipartition, bipartition_from_sides, find_bipartition
from repro.graphs.delta import DeltaGraph
from repro.graphs import generators, identifiers

__all__ = [
    "Graph",
    "DirectedGraph",
    "DeltaGraph",
    "Bipartition",
    "bipartition_from_sides",
    "find_bipartition",
    "generators",
    "identifiers",
]
