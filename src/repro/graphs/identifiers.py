"""Identifier-space helpers.

The LOCAL/CONGEST models assume unique identifiers from ``{1 .. poly(n)}``
(Section 2).  Linial's lower bound and the O(log* n) terms of all
complexities are driven by the size of this identifier space, so the
experiments need control over it.
"""

from __future__ import annotations

import math
from typing import List

from repro.graphs.core import Graph


def id_space_size(graph: Graph) -> int:
    """The size of the identifier space implied by the graph's node ids."""
    if graph.num_nodes == 0:
        return 1
    return max(graph.node_ids) + 1


def id_bits(graph: Graph) -> int:
    """Number of bits needed to write any node identifier."""
    return max(1, math.ceil(math.log2(max(2, id_space_size(graph)))))


def log_star(value: float) -> int:
    """The iterated logarithm log* (base 2), with log*(x) = 0 for x <= 1."""
    count = 0
    current = float(value)
    while current > 1.0:
        current = math.log2(current)
        count += 1
    return count


def edge_identifiers(graph: Graph) -> List[int]:
    """Unique identifiers for the edges (usable as line-graph node ids)."""
    return [graph.edge_id(e) for e in graph.edges()]
