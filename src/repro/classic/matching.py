"""Maximal matching from an edge coloring.

Given a proper C-edge coloring, iterating over the color classes and
adding every edge whose endpoints are both still unmatched yields a
maximal matching after C rounds (the edges of one class are a matching,
so the additions of one round never conflict).  This is the reduction the
paper's introduction uses to relate edge coloring to the other classic
symmetry-breaking problems; combined with Theorem 1.1 it gives a maximal
matching in ``poly log Δ + O(log* n) + (2Δ−1)`` rounds.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.list_edge_coloring import list_edge_coloring
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


def maximal_matching_from_edge_coloring(
    graph: Graph,
    edge_colors: Dict[int, int],
    tracker: Optional[RoundTracker] = None,
) -> Set[int]:
    """A maximal matching obtained by scanning the color classes in order.

    Args:
        graph: the host graph.
        edge_colors: a proper edge coloring of all edges.
        tracker: one round is charged per non-empty color class.

    Returns the matching as a set of edge indices.
    """
    matching: Set[int] = set()
    matched = [False] * graph.num_nodes
    for color in sorted(set(edge_colors.values())):
        members = [e for e, c in edge_colors.items() if c == color]
        for e in members:
            u, v = graph.edge_endpoints(e)
            if not matched[u] and not matched[v]:
                matching.add(e)
                matched[u] = True
                matched[v] = True
        if tracker is not None:
            tracker.charge(1, "matching-from-classes")
    return matching


def maximal_matching(
    graph: Graph,
    tracker: Optional[RoundTracker] = None,
) -> Tuple[Set[int], Dict[int, int]]:
    """A maximal matching via the paper's (2Δ−1)-edge coloring (Theorem 1.1).

    Returns ``(matching, edge_colors)`` — the coloring is returned as well
    because callers typically reuse it.
    """
    result = list_edge_coloring(graph, tracker=tracker)
    matching = maximal_matching_from_edge_coloring(graph, result.colors, tracker=tracker)
    return matching, result.colors
