"""Maximal independent set from a vertex coloring.

Given a proper C-vertex coloring, iterating over the color classes and
adding every node with no neighbor already in the set yields an MIS after
C rounds (a color class is an independent set, so the additions of one
round never conflict).  This is the classic reduction the paper's
introduction refers to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.classic.vertex_coloring import delta_plus_one_vertex_coloring
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


def mis_from_vertex_coloring(
    graph: Graph,
    colors: Sequence[int],
    tracker: Optional[RoundTracker] = None,
) -> Set[int]:
    """An MIS obtained by scanning the color classes in order."""
    independent: Set[int] = set()
    blocked = [False] * graph.num_nodes
    for color in sorted(set(colors)):
        members = [v for v in graph.nodes() if colors[v] == color]
        for v in members:
            if not blocked[v]:
                independent.add(v)
                blocked[v] = True
                for w in graph.neighbors(v):
                    blocked[w] = True
        if tracker is not None:
            tracker.charge(1, "mis-from-classes")
    return independent


def maximal_independent_set(
    graph: Graph,
    tracker: Optional[RoundTracker] = None,
) -> Tuple[Set[int], List[int]]:
    """An MIS via the (Δ+1)-vertex coloring pipeline.

    Returns ``(mis, vertex_colors)``.
    """
    colors, _num = delta_plus_one_vertex_coloring(graph, tracker=tracker)
    independent = mis_from_vertex_coloring(graph, colors, tracker=tracker)
    return independent, colors
