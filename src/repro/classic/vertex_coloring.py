"""(Δ+1)-vertex coloring.

Two stages, mirroring the classic pipeline the paper's introduction
describes: Linial's O(Δ²)-coloring in O(log* n) rounds, followed by a
color reduction down to Δ+1 colors.  The reduction is the
Kuhn–Wattenhofer halving scheme (the same scheme the linear-in-Δ edge
coloring baseline uses on the line graph): the current classes are split
into groups of 2(Δ+1) consecutive classes, every group re-colors itself
into its own (Δ+1)-color palette one class per round, and the number of
colors halves every 2(Δ+1) rounds — O(Δ log Δ) rounds in total.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.coloring.linial import linial_vertex_coloring
from repro.distributed.rounds import RoundTracker
from repro.graphs.core import Graph


def kuhn_wattenhofer_vertex_reduction(
    graph: Graph,
    colors: Sequence[int],
    num_colors: int,
    target: int,
    tracker: Optional[RoundTracker] = None,
) -> List[int]:
    """Reduce a proper vertex coloring to ``target ≥ Δ+1`` colors by halving.

    Each stage partitions the color classes into groups of ``2·target``
    consecutive classes; within a group, the classes above ``target`` are
    processed one per round and each of their nodes greedily picks a free
    color in the group's ``target``-color palette (it has at most
    Δ ≤ target − 1 neighbors, so a free color exists).  Groups use
    disjoint palettes, so they proceed in parallel.
    """
    if target < graph.max_degree + 1:
        raise ValueError("target must be at least Δ + 1")
    current_colors = list(colors)
    current = max(num_colors, target)
    while current > target:
        group_size = 2 * target
        num_groups = -(-current // group_size)
        new_colors: List[Optional[int]] = [None] * graph.num_nodes
        for v in graph.nodes():
            group, position = divmod(current_colors[v], group_size)
            if position < target:
                new_colors[v] = group * target + position
        rounds_this_stage = 0
        for position in range(target, group_size):
            rounds_this_stage += 1
            moving = [v for v in graph.nodes() if current_colors[v] % group_size == position]
            for v in moving:
                group = current_colors[v] // group_size
                palette_start = group * target
                used = {
                    new_colors[w]
                    for w in graph.neighbors(v)
                    if new_colors[w] is not None
                    and palette_start <= new_colors[w] < palette_start + target
                }
                new_colors[v] = next(
                    c for c in range(palette_start, palette_start + target) if c not in used
                )
        if tracker is not None:
            tracker.charge(rounds_this_stage, "kw-vertex-reduction")
        current_colors = [c for c in new_colors]  # type: ignore[misc]
        current = num_groups * target
        if num_groups == 1:
            break
    return [c for c in current_colors]


def delta_plus_one_vertex_coloring(
    graph: Graph,
    tracker: Optional[RoundTracker] = None,
) -> Tuple[List[int], int]:
    """A proper (Δ+1)-vertex coloring in O(Δ log Δ + log* n) charged rounds.

    Returns ``(colors, num_colors)`` with ``num_colors = Δ + 1``.
    """
    if graph.num_nodes == 0:
        return [], 1
    target = graph.max_degree + 1
    initial, num_colors = linial_vertex_coloring(graph, tracker=tracker)
    if num_colors <= target:
        return initial, num_colors
    reduced = kuhn_wattenhofer_vertex_reduction(graph, initial, num_colors, target, tracker=tracker)
    return reduced, target
