"""The four classic symmetry-breaking problems of the paper's introduction.

Section 1 motivates edge coloring as one of the four prototypical
distributed symmetry-breaking problems — MIS, (Δ+1)-vertex coloring,
maximal matching and (2Δ−1)-edge coloring — and notes that given a
C-coloring (of the vertices or edges), all four can be solved in C
additional rounds by iterating over the color classes.  This subpackage
implements those reductions on top of the repository's coloring
algorithms, so the paper's edge-coloring improvements translate directly
into maximal-matching algorithms.
"""

from repro.classic.matching import maximal_matching, maximal_matching_from_edge_coloring
from repro.classic.mis import maximal_independent_set, mis_from_vertex_coloring
from repro.classic.vertex_coloring import (
    delta_plus_one_vertex_coloring,
    kuhn_wattenhofer_vertex_reduction,
)

__all__ = [
    "maximal_matching",
    "maximal_matching_from_edge_coloring",
    "maximal_independent_set",
    "mis_from_vertex_coloring",
    "delta_plus_one_vertex_coloring",
    "kuhn_wattenhofer_vertex_reduction",
]
