"""``repro-serving/v1`` — the serving plane's wire protocol. **Normative.**

This docstring is the contract every speaker of the protocol implements:
:class:`~repro.serving.session.ServingSession` (in-process),
:class:`~repro.serving.daemon.ColoringDaemon` (socket server), the
clients built by :func:`repro.serving.connect`, and the ``repro query``
CLI.  The prose in other modules is commentary; this file wins.

Framing
=======

The protocol is newline-delimited JSON.  One request line is answered
by exactly one response line, in order, per connection.  Lines are
UTF-8; a response line is the request's answer serialized with sorted
keys (``json.dumps(response, sort_keys=True)``) — canonical key order
is what makes response streams byte-comparable across
implementations, which the twin tests rely on.

Requests
========

A request is a JSON object with an ``op`` field.  Ops and their
required fields:

==============  =======================  =========  ====================
op              fields                   class      answer payload
==============  =======================  =========  ====================
``color``       ``u``, ``v``             read       ``color``
``node_palette`` ``v``                   read       ``colors``, ``degree``
``schedule``    ``v``                    read       ``slots``
``stats``       (``scope``, optional)    read       artifact summary
``insert``      ``u``, ``v``             write      ``epoch``
``delete``      ``u``, ``v``             write      ``epoch``
``set_list``    ``u``, ``v``, ``colors`` write      ``epoch``
``rebase``      —                        write      ``epoch``
``shutdown``    —                        wire-only  ``{}`` (ack)
==============  =======================  =========  ====================

``u``/``v`` are integers (integer-coercible values are accepted);
``colors`` is a list of non-negative integers or ``null`` (clear the
demand list).  ``stats`` with ``"scope": "daemon"`` is answered by the
daemon itself (process introspection) and is not part of the session
twin contract; bare ``stats`` is.  ``shutdown`` is only meaningful on a
socket — an in-process session answers it with error code
``wire-only``.

Two optional *envelope* fields may accompany any request and never
reach the session:

* ``"proto"`` — the protocol format tag.  When present it must equal
  :data:`PROTOCOL_FORMAT`; a mismatch is answered with error code
  ``unsupported-protocol``.  Absence means "current version".
* ``"trace"`` — a ``{"trace_id": ..., "span_id": ...}`` span context
  carried across the socket for the observability plane; stripped
  before dispatch, never echoed, never cached.

Unknown additional fields are ignored (forward compatibility).

Concurrency contract
====================

``read`` ops may execute concurrently against a snapshot of the
current epoch; ``write`` ops serialize on a single writer lock which
establishes a **total order**: every write response carries the unique
``epoch`` the write produced, and the concatenation of writes in epoch
order is a serial schedule every response is consistent with
(linearizability — pinned by the protocol tests).  A daemon journals a
write *before* acknowledging it, inside the writer critical section,
so journal order equals epoch order equals ack order and an
acknowledged write survives SIGKILL.

Responses
=========

Every response object carries ``ok`` (boolean) and ``op`` (echo of the
request op, ``null`` when the request was too malformed to name one).
Successful responses add the payload fields of the table above.
Failed requests never close the connection and never poison a batch;
they answer::

    {"ok": false, "op": <op-or-null>, "error": <human message>,
     "code": <stable machine code>}

``error`` text is advisory and may change; ``code`` is stable API,
drawn from :data:`ERROR_CODES`:

=======================  ==============================================
code                     meaning
=======================  ==============================================
``malformed-request``    the line is not valid JSON
``not-an-object``        the line parsed but is not a JSON object
``unsupported-protocol`` the ``proto`` envelope tag is not ours
``unknown-op``           ``op`` missing or not in the table above
``bad-field``            a required field is missing or not coercible
``absent-edge``          the addressed edge is not in the graph
``node-out-of-range``    the addressed node id is out of range
``bad-list``             a demand list is empty or has negative colors
``list-exhausted``       no allowed color remains for some edge
``lookup-only``          delta sent to a non-canonical artifact
``wire-only``            op only exists on a daemon socket
``repair-failed``        any other repair-engine failure
=======================  ==============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

#: Wire-format tag of this protocol; bump on breaking changes.
PROTOCOL_FORMAT = "repro-serving/v1"

#: Read ops: concurrent, epoch-snapshotted, result-cache eligible.
READ_OPS = ("color", "node_palette", "schedule", "stats")
#: Write ops routed to the repair engine (journaled by daemons).
DELTA_OPS = ("insert", "delete", "set_list")
#: Maintenance write ops: never cached, never journaled, epoch-preserving.
CONTROL_OPS = ("rebase",)
#: Ops that only exist on a daemon socket.
WIRE_OPS = ("shutdown",)

#: Envelope fields stripped before dispatch (see the module docstring).
ENVELOPE_FIELDS = ("proto", "trace")

#: Stable error codes → meaning.  Keys are API: tests pin them and
#: clients may dispatch on them; never rename, only add.
ERROR_CODES = {
    "malformed-request": "the line is not valid JSON",
    "not-an-object": "the line parsed but is not a JSON object",
    "unsupported-protocol": "the 'proto' envelope tag is not ours",
    "unknown-op": "'op' missing or not a known operation",
    "bad-field": "a required field is missing or not coercible",
    "absent-edge": "the addressed edge is not in the graph",
    "node-out-of-range": "the addressed node id is out of range",
    "bad-list": "a demand list is empty or has negative colors",
    "list-exhausted": "no allowed color remains for some edge",
    "lookup-only": "delta sent to a non-canonical artifact",
    "wire-only": "op only exists on a daemon socket",
    "repair-failed": "any other repair-engine failure",
}


@dataclass(frozen=True)
class ErrorResponse:
    """A structured failure answer (``ok: false`` on the wire)."""

    code: str
    error: str
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown error code {self.code!r}")

    def to_wire(self) -> Dict[str, object]:
        return {"ok": False, "op": self.op, "error": self.error, "code": self.code}


class ProtocolError(Exception):
    """A request that cannot be dispatched; carries its wire answer."""

    def __init__(self, code: str, message: str, op: Optional[str] = None) -> None:
        super().__init__(message)
        self.response = ErrorResponse(code=code, error=message, op=op)
        self.code = code


@dataclass(frozen=True)
class QueryRequest:
    """A read op: ``color`` (edge) or ``node_palette``/``schedule`` (node)."""

    op: str
    v: int
    u: Optional[int] = None

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"op": self.op, "v": self.v}
        if self.u is not None:
            wire["u"] = self.u
        return wire


@dataclass(frozen=True)
class StatsRequest:
    """The ``stats`` read op; ``scope="daemon"`` asks for introspection."""

    scope: Optional[str] = None
    op: str = field(default="stats", init=False)

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"op": "stats"}
        if self.scope is not None:
            wire["scope"] = self.scope
        return wire


@dataclass(frozen=True)
class DeltaRequest:
    """A write op: ``insert``/``delete`` an edge, or ``set_list`` demands."""

    op: str
    u: int
    v: int
    colors: Optional[Tuple[int, ...]] = None

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"op": self.op, "u": self.u, "v": self.v}
        if self.op == "set_list":
            wire["colors"] = None if self.colors is None else list(self.colors)
        return wire


@dataclass(frozen=True)
class RebaseRequest:
    """The ``rebase`` maintenance op (epoch-preserving write)."""

    op: str = field(default="rebase", init=False)

    def to_wire(self) -> Dict[str, object]:
        return {"op": "rebase"}


@dataclass(frozen=True)
class ShutdownRequest:
    """The wire-only ``shutdown`` op (acknowledged, then the daemon stops)."""

    op: str = field(default="shutdown", init=False)

    def to_wire(self) -> Dict[str, object]:
        return {"op": "shutdown"}


Request = Union[QueryRequest, StatsRequest, DeltaRequest, RebaseRequest, ShutdownRequest]


def _int_field(payload: Mapping, op: str, name: str) -> int:
    value = payload.get(name)
    if value is None or isinstance(value, bool):
        raise ProtocolError(
            "bad-field", f"op {op!r} requires integer field {name!r}", op=op
        )
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            "bad-field",
            f"op {op!r} field {name!r} is not an integer: {value!r}",
            op=op,
        ) from None


def parse_request(payload: Mapping) -> Request:
    """Validate one request object into its typed form.

    Raises :class:`ProtocolError` (carrying the wire answer) on
    anything the normative spec rejects.  Envelope fields are ignored;
    unknown extra fields are ignored.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("not-an-object", "request must be a JSON object")
    proto = payload.get("proto")
    if proto is not None and proto != PROTOCOL_FORMAT:
        raise ProtocolError(
            "unsupported-protocol",
            f"unsupported protocol {proto!r} (this server speaks {PROTOCOL_FORMAT})",
        )
    op = payload.get("op")
    if op == "color":
        return QueryRequest(
            op="color", u=_int_field(payload, op, "u"), v=_int_field(payload, op, "v")
        )
    if op in ("node_palette", "schedule"):
        return QueryRequest(op=op, v=_int_field(payload, op, "v"))
    if op == "stats":
        scope = payload.get("scope")
        return StatsRequest(scope=None if scope is None else str(scope))
    if op in DELTA_OPS:
        colors = None
        if op == "set_list":
            raw = payload.get("colors")
            if raw is not None:
                if isinstance(raw, (str, bytes)) or not hasattr(raw, "__iter__"):
                    raise ProtocolError(
                        "bad-field",
                        f"op 'set_list' field 'colors' must be a list or null, "
                        f"got {raw!r}",
                        op=op,
                    )
                try:
                    colors = tuple(int(c) for c in raw)
                except (TypeError, ValueError):
                    raise ProtocolError(
                        "bad-field",
                        f"op 'set_list' field 'colors' has non-integer entries: {raw!r}",
                        op=op,
                    ) from None
        return DeltaRequest(
            op=op,
            u=_int_field(payload, op, "u"),
            v=_int_field(payload, op, "v"),
            colors=colors,
        )
    if op == "rebase":
        return RebaseRequest()
    if op == "shutdown":
        return ShutdownRequest()
    raise ProtocolError(
        "unknown-op", f"unknown op {op!r}", op=op if isinstance(op, str) else None
    )


def decode_request_line(line: str) -> Mapping:
    """One wire line → the raw request object (envelope still attached)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "malformed-request", f"malformed request: {exc}"
        ) from None
    if not isinstance(payload, Mapping):
        raise ProtocolError("not-an-object", "request must be a JSON object")
    return payload


def strip_envelope(payload: Mapping) -> Dict[str, object]:
    """Drop the envelope fields; what remains is the session's request."""
    return {k: v for k, v in payload.items() if k not in ENVELOPE_FIELDS}


def encode_request(request: Union[Request, Mapping]) -> str:
    """A request (typed or raw mapping) → its canonical wire line."""
    payload = request.to_wire() if hasattr(request, "to_wire") else dict(request)
    return json.dumps(payload, sort_keys=True)


def encode_response(response: Union[ErrorResponse, Mapping]) -> str:
    """A response → its canonical wire line (sorted keys, no newline)."""
    payload = response.to_wire() if isinstance(response, ErrorResponse) else response
    return json.dumps(payload, sort_keys=True)


def error_response(
    code: str, message: str, op: Optional[str] = None
) -> Dict[str, object]:
    """The wire dict of a structured failure answer."""
    return ErrorResponse(code=code, error=message, op=op).to_wire()


def is_read(request: Request) -> bool:
    """True for ops that may execute concurrently against a snapshot."""
    return isinstance(request, (QueryRequest, StatsRequest))


def is_write(request: Request) -> bool:
    """True for ops that must serialize on the writer lock."""
    return isinstance(request, (DeltaRequest, RebaseRequest))
