"""Long-lived serving daemon: a socket batch endpoint over one artifact.

``python -m repro serve --listen`` turns the serving plane into a
process that outlives any single batch: a stdlib
:class:`socketserver.TCPServer` fronting one
:class:`~repro.serving.session.ServingSession` over a loaded
:class:`~repro.serving.artifact.ColoringArtifact`.

**Protocol** — newline-delimited JSON, lockstep per connection: each
request line is answered with exactly one response line (the
:meth:`ServingSession.query` response, canonical key order), in order.
Any number of sequential connections may come and go; the server is
single-threaded by design, so requests are globally serialized and the
response stream is bit-identical to an in-process session serving the
same request sequence (pinned by the ``serving_daemon`` scenario, E13).
One extra op exists only on the wire: ``{"op": "shutdown"}`` is
acknowledged and then gracefully stops the daemon.

**Durability** — with journaling on (the default), every absorbed delta
is appended to the artifact's on-disk journal *before* its response is
written: an acknowledged delta is a durable delta.  A SIGKILLed daemon
therefore loses nothing it acknowledged — restarting replays the journal
(:meth:`ColoringArtifact.load`) and resumes bit-identically.  Graceful
shutdown (the ``shutdown`` op, or SIGTERM/SIGINT under the CLI) compacts
the journal into a fresh full artifact JSON on the way out.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import socketserver
import threading
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs import get_registry, snapshot, tracer
from repro.obs import trace as obs_trace
from repro.serving.artifact import ColoringArtifact
from repro.serving.journal import DeltaJournal, journal_path
from repro.serving.session import DELTA_OPS, ServingSession

logger = logging.getLogger(__name__)

#: Default bind address; port 0 lets the OS pick a free port.
DEFAULT_LISTEN = "127.0.0.1:0"


def parse_address(listen: str) -> Tuple[str, int]:
    """Split ``host:port`` (or bare ``:port`` / ``port``) into a pair."""
    host, _, port = listen.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"listen address {listen!r} is not HOST:PORT")
    return host or "127.0.0.1", int(port)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: JSON lines in, JSON lines out, lockstep."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        daemon: "ColoringDaemon" = self.server.daemon  # type: ignore[attr-defined]
        for raw in self.rfile:
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                line = ""
            if not line:
                continue
            response = daemon.handle_line(line)
            self.wfile.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                break


class ColoringDaemon:
    """The serving loop: artifact + session + socket server + journal.

    ``journal=True`` (default) write-throughs every absorbed delta to
    ``<artifact>.journal`` before acknowledging it; ``fsync=True``
    additionally survives OS death, mirroring the result store's
    durability knob.  :meth:`stop` with ``compact=True`` (graceful
    shutdown) folds the journal into the artifact JSON; ``compact=False``
    abandons the process state, leaving the journal for the next
    :meth:`ColoringArtifact.load` to replay — the crash path, minus the
    crash.
    """

    def __init__(
        self,
        artifact_path: str,
        *,
        listen: str = DEFAULT_LISTEN,
        journal: bool = True,
        fsync: bool = False,
        cache_size: int = 1024,
        repair_path: str = "auto",
        radius_limit: Optional[int] = None,
        rebase_policy="auto",
    ) -> None:
        self.artifact_path = artifact_path
        self.journal = journal
        self.fsync = fsync
        self.host, self.port = parse_address(listen)
        artifact = ColoringArtifact.load(artifact_path)
        self.session = ServingSession(
            artifact,
            cache_size=cache_size,
            repair_path=repair_path,
            radius_limit=radius_limit,
            rebase_policy=rebase_policy,
        )
        self._server: Optional[socketserver.TCPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self.requests_served = 0

    # --------------------------------------------------------------- serving
    def handle_line(self, line: str) -> Dict[str, object]:
        """Answer one protocol line (shared by the socket handler and tests).

        Two wire-only extras on top of the session protocol (``shutdown``
        precedent): an optional ``"trace"`` request field carries the
        caller's span context across the socket and is stripped before
        the session sees the request — it never affects the response or
        the result cache; and ``{"op": "stats", "scope": "daemon"}``
        answers the extended introspection snapshot (bare ``stats``
        stays a session op so daemon and in-process twins answer it
        identically).
        """
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "op": None, "error": f"malformed request: {exc}"}
        if not isinstance(request, Mapping):
            return {"ok": False, "op": None, "error": "request must be a JSON object"}
        trace_ctx = request.get("trace")
        if trace_ctx is not None:
            request = {k: v for k, v in request.items() if k != "trace"}
            if isinstance(trace_ctx, Mapping):
                obs_trace.set_context(
                    trace_ctx.get("trace_id"), trace_ctx.get("span_id")
                )
        op = request.get("op")
        if op == "shutdown":
            self.requests_served += 1
            self._shutdown.set()
            return {"ok": True, "op": "shutdown"}
        if op == "stats" and request.get("scope") == "daemon":
            self.requests_served += 1
            return self.daemon_stats()
        with tracer().span("daemon.request", op=op):
            response = self.session.query(request)
            if self.journal and response.get("ok") and response.get("op") in DELTA_OPS:
                # Durability before acknowledgment: once the caller sees the
                # response, the delta survives any kill.
                self.session.artifact.save(
                    self.artifact_path, journal=True, fsync=self.fsync
                )
        if trace_ctx is not None:
            obs_trace.set_context(None, None)
        self.requests_served += 1
        get_registry().counter("daemon.requests").inc()
        return response

    def daemon_stats(self) -> Dict[str, object]:
        """The read-only introspection snapshot: registry + session + artifact.

        Deliberately a *daemon-scope* answer (never routed through the
        session or its result cache): the payload is observability, not
        an answer, and it varies with process history — exactly what the
        twin contracts exclude.
        """
        return {
            "ok": True,
            "op": "stats",
            "scope": "daemon",
            "requests_served": self.requests_served,
            "registry": snapshot(),
            "cache_stats": self.session.cache_stats(),
            "artifact": self.session.artifact.stats(),
        }

    # ------------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; return (host, port)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        socketserver.TCPServer.allow_reuse_address = True
        self._server = socketserver.TCPServer((self.host, self.port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (signal handlers and tests call this)."""
        self._shutdown.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown was requested (op or signal)."""
        return self._shutdown.wait(timeout)

    def stop(self, compact: bool = True) -> int:
        """Stop serving; optionally compact the journal.  Returns records folded.

        ``compact=True`` is the graceful path: the in-memory artifact
        (which already contains every journaled delta) is full-saved,
        folding and deleting the journal.  ``compact=False`` leaves the
        on-disk base + journal pair untouched for the next load.
        """
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        folded = 0
        if compact:
            journal = DeltaJournal(journal_path(self.artifact_path))
            folded = len(journal.records()) if journal.exists() else 0
            self.session.artifact.save(self.artifact_path, fsync=self.fsync)
        return folded


def run_daemon(
    artifact_path: str,
    listen: str = DEFAULT_LISTEN,
    *,
    journal: bool = True,
    fsync: bool = False,
    cache_size: int = 1024,
    repair_path: str = "auto",
    radius_limit: Optional[int] = None,
    rebase_policy="auto",
    log=None,
) -> int:
    """The ``repro serve --listen`` loop: serve until shutdown, then compact.

    Prints ``listening on HOST:PORT`` to stdout (drivers —
    :func:`spawn_daemon_process` included — parse that exact line to
    discover the OS-assigned port); everything else goes through the
    module logger like the journal and the store.  ``log`` is an
    optional extra sink for both lines (legacy hook; tests).  Installs
    SIGTERM/SIGINT handlers that trigger the same graceful shutdown as
    the ``shutdown`` op.  SIGKILL, by definition, skips compaction —
    that is what the journal is for.
    """
    daemon = ColoringDaemon(
        artifact_path,
        listen=listen,
        journal=journal,
        fsync=fsync,
        cache_size=cache_size,
        repair_path=repair_path,
        radius_limit=radius_limit,
        rebase_policy=rebase_policy,
    )
    host, port = daemon.start()
    # This exact stdout line is the port-discovery protocol; keep it a
    # print regardless of logging configuration.
    print(f"listening on {host}:{port}", flush=True)
    logger.info("listening on %s:%d", host, port)
    if log:
        log(f"listening on {host}:{port}")
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(
            signum, lambda _s, _f: daemon.request_shutdown()
        )
    try:
        daemon.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        folded = daemon.stop(compact=True)
    stats = daemon.session.cache_stats()
    summary = (
        f"shutdown: {daemon.requests_served} requests served, "
        f"{stats['deltas_applied']} deltas, {folded} journal records compacted"
    )
    logger.info("%s", summary)
    if log:
        log(summary)
    return 0


class DaemonClient:
    """A lockstep client for the daemon protocol (tests, probes, drivers)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")

    def request(self, request: Mapping) -> Dict[str, object]:
        """Send one request and block for its response line."""
        self._wfile.write(json.dumps(dict(request), sort_keys=True) + "\n")
        self._wfile.flush()
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection mid-request")
        return json.loads(line)

    def request_many(self, requests: List[Mapping]) -> List[Dict[str, object]]:
        """Lockstep batch: each request is acknowledged before the next."""
        return [self.request(request) for request in requests]

    def shutdown(self) -> Dict[str, object]:
        """Gracefully stop the daemon (it compacts its journal and exits)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best-effort
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def spawn_daemon_process(
    artifact_path: str,
    *,
    listen: str = DEFAULT_LISTEN,
    journal: bool = True,
    repair_path: str = "auto",
    extra_args: Optional[List[str]] = None,
    timeout: float = 30.0,
):
    """Start ``python -m repro serve --listen`` as a subprocess.

    Returns ``(process, host, port)`` once the daemon reports its bound
    address.  Used by the E13 runner, the chaos probe and the CLI tests —
    the SIGKILL experiments need a real process to kill.
    """
    import subprocess
    import sys
    import time

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    command = [sys.executable, "-m", "repro", "serve", "--listen", listen,
               "--artifact", artifact_path, "--repair-path", repair_path]
    if not journal:
        command.append("--no-journal")
    command.extend(extra_args or [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
        env=env,
    )
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            address = line.split("listening on ", 1)[1].strip()
            host, port = parse_address(address)
            return process, host, port
        if not line and process.poll() is not None:
            break
    process.kill()
    raise RuntimeError(f"daemon failed to start (last output: {line!r})")
