"""Long-lived serving daemon: a concurrent socket endpoint over one artifact.

``python -m repro serve --listen`` turns the serving plane into a
process that outlives any single batch: a threading
:class:`socketserver.ThreadingMixIn` server fronting one
:class:`~repro.serving.session.ServingSession` over a loaded
:class:`~repro.serving.artifact.ColoringArtifact`.  The wire format is
the ``repro-serving/v1`` protocol — :mod:`repro.serving.protocol` is
the normative spec.

**Concurrency** — each connection is handled by its own thread, and
the session's readers/writer lock does the classification: read ops
from any number of connections execute concurrently against the
current epoch; write ops serialize on the writer lock, which
establishes the total order (each write response carries the unique
epoch it produced).  Responses are still lockstep *per connection*:
one request line, one response line, in order.  Every request runs
under a per-connection ``daemon.request`` span; the
``serving.readers_active`` and ``serving.write_queue_depth`` gauges
expose the lock's live levels.

**Durability** — with journaling on (the default), every absorbed
delta is appended to the artifact's on-disk journal *inside the writer
critical section, before its response is written*: an acknowledged
delta is a durable delta, and journal order equals epoch order equals
ack order.  A SIGKILLed daemon therefore loses nothing it acknowledged
— restarting replays the journal (:meth:`ColoringArtifact.load`) and
resumes bit-identically.  ``journal_max_bytes`` / ``journal_max_records``
cap the active journal; hitting a cap triggers an online
compact-and-rotate into ``<artifact>.journal.N`` segments (see
:class:`~repro.serving.journal.RotationPolicy`), keeping weeks-long
daemons at bounded disk and bounded replay.  Graceful shutdown (the
``shutdown`` op, or SIGTERM/SIGINT under the CLI) compacts journal and
segments into a fresh full artifact JSON on the way out.

**Clients** — :func:`connect` is the one client surface: it returns
the same duck-typed client (``request`` / ``request_many`` /
``shutdown`` / context manager) whether the target is an in-process
artifact (a :class:`SessionClient` over a :class:`ServingSession`) or
a daemon address (a socket :class:`DaemonClient`).  Constructing
:class:`DaemonClient` directly still works but is deprecated.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import socketserver
import threading
import warnings
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.obs import get_registry, snapshot, tracer
from repro.obs import trace as obs_trace
from repro.serving import protocol
from repro.serving.artifact import ColoringArtifact
from repro.serving.journal import DeltaJournal, RotationPolicy, journal_path
from repro.serving.session import ServingSession

logger = logging.getLogger(__name__)

#: Default bind address; port 0 lets the OS pick a free port.
DEFAULT_LISTEN = "127.0.0.1:0"


def parse_address(listen: str) -> Tuple[str, int]:
    """Split ``host:port`` (or bare ``:port`` / ``port``) into a pair."""
    host, _, port = listen.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"listen address {listen!r} is not HOST:PORT")
    return host or "127.0.0.1", int(port)


class _Server(socketserver.ThreadingMixIn, socketserver.TCPServer):
    """One thread per connection; handler threads die with the process.

    ``daemon_threads`` keeps shutdown bounded: a client that holds its
    connection open forever must not be able to hold the process
    hostage (the journal, not the handler thread, owns durability).
    """

    daemon_threads = True
    allow_reuse_address = True


class _Handler(socketserver.StreamRequestHandler):
    """One connection: JSON lines in, JSON lines out, lockstep."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        daemon: "ColoringDaemon" = self.server.coloring_daemon  # type: ignore[attr-defined]
        daemon._connections_gauge(+1)
        try:
            for raw in self.rfile:
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError:
                    line = ""
                if not line:
                    continue
                response = daemon.handle_line(line)
                self.wfile.write((protocol.encode_response(response) + "\n").encode("utf-8"))
                self.wfile.flush()
                if response.get("op") == "shutdown" and response.get("ok"):
                    break
        finally:
            daemon._connections_gauge(-1)


class ColoringDaemon:
    """The serving loop: artifact + session + socket server + journal.

    ``journal=True`` (default) write-throughs every absorbed delta to
    ``<artifact>.journal`` before acknowledging it (inside the
    session's writer critical section, via
    :attr:`ServingSession.write_hook`); ``fsync=True`` additionally
    survives OS death, mirroring the result store's durability knob.
    ``journal_max_bytes`` / ``journal_max_records`` cap the active
    journal and trigger compact-and-rotate.  :meth:`stop` with
    ``compact=True`` (graceful shutdown) folds journal + segments into
    the artifact JSON; ``compact=False`` abandons the process state,
    leaving the journal for the next :meth:`ColoringArtifact.load` to
    replay — the crash path, minus the crash.
    """

    def __init__(
        self,
        artifact_path: str,
        *,
        listen: str = DEFAULT_LISTEN,
        journal: bool = True,
        fsync: bool = False,
        cache_size: int = 1024,
        repair_path: str = "auto",
        radius_limit: Optional[int] = None,
        rebase_policy="auto",
        journal_max_bytes: Optional[int] = None,
        journal_max_records: Optional[int] = None,
    ) -> None:
        self.artifact_path = artifact_path
        self.journal = journal
        self.fsync = fsync
        self.host, self.port = parse_address(listen)
        self.rotation: Optional[RotationPolicy] = None
        if journal_max_bytes is not None or journal_max_records is not None:
            self.rotation = RotationPolicy(
                max_bytes=journal_max_bytes, max_records=journal_max_records
            )
        artifact = ColoringArtifact.load(artifact_path)
        self.session = ServingSession(
            artifact,
            cache_size=cache_size,
            repair_path=repair_path,
            radius_limit=radius_limit,
            rebase_policy=rebase_policy,
        )
        if journal:
            self.session.write_hook = self._persist_write
        self._server: Optional[socketserver.TCPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self._served_lock = threading.Lock()
        self._connections = 0
        self.requests_served = 0

    # ------------------------------------------------------------ accounting
    def _count_request(self) -> None:
        with self._served_lock:
            self.requests_served += 1
        get_registry().counter("daemon.requests").inc()

    def _connections_gauge(self, delta: int) -> None:
        with self._served_lock:
            self._connections += delta
            get_registry().gauge("daemon.connections").set(self._connections)

    def _persist_write(self, _response: Mapping) -> None:
        """The session's write hook: journal-before-ack (+ rotation)."""
        self.session.artifact.save(
            self.artifact_path, journal=True, fsync=self.fsync, rotation=self.rotation
        )

    # --------------------------------------------------------------- serving
    def handle_line(self, line: str) -> Dict[str, object]:
        """Answer one protocol line (shared by the socket handler and tests).

        Wire-level concerns on top of the session protocol (see
        :mod:`repro.serving.protocol`): the optional ``"trace"``
        envelope field seeds this thread's span context and is
        stripped before the session sees the request; ``shutdown`` is
        acknowledged here; ``{"op": "stats", "scope": "daemon"}``
        answers the extended introspection snapshot (bare ``stats``
        stays a session op so daemon and in-process twins answer it
        identically).  Journaling happens inside the session's writer
        lock via :attr:`ServingSession.write_hook`, so an acknowledged
        delta is durable no matter how many connections race.
        """
        try:
            request = protocol.decode_request_line(line)
        except protocol.ProtocolError as exc:
            return exc.response.to_wire()
        trace_ctx = request.get("trace")
        if trace_ctx is not None and isinstance(trace_ctx, Mapping):
            obs_trace.set_context(trace_ctx.get("trace_id"), trace_ctx.get("span_id"))
        request = protocol.strip_envelope(request)
        op = request.get("op")
        try:
            if op == "shutdown":
                self._count_request()
                self._shutdown.set()
                return {"ok": True, "op": "shutdown"}
            if op == "stats" and request.get("scope") == "daemon":
                self._count_request()
                return self.daemon_stats()
            with tracer().span("daemon.request", op=op):
                response = self.session.query(request)
            self._count_request()
            return response
        finally:
            if trace_ctx is not None:
                obs_trace.set_context(None, None)

    def daemon_stats(self) -> Dict[str, object]:
        """The read-only introspection snapshot: registry + session + artifact.

        Deliberately a *daemon-scope* answer (never routed through the
        session or its result cache): the payload is observability, not
        an answer, and it varies with process history — exactly what the
        twin contracts exclude.
        """
        return {
            "ok": True,
            "op": "stats",
            "scope": "daemon",
            "proto": protocol.PROTOCOL_FORMAT,
            "requests_served": self.requests_served,
            "connections": self._connections,
            "registry": snapshot(),
            "cache_stats": self.session.cache_stats(),
            "artifact": self.session.artifact.stats(),
        }

    # ------------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; return the *resolved*
        ``(host, port)`` (port 0 asks the OS for a free one)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = _Server((self.host, self.port), _Handler)
        self._server.coloring_daemon = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (signal handlers and tests call this)."""
        self._shutdown.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown was requested (op or signal)."""
        return self._shutdown.wait(timeout)

    def stop(self, compact: bool = True) -> int:
        """Stop serving; optionally compact the journal.  Returns records folded.

        ``compact=True`` is the graceful path: the in-memory artifact
        (which already contains every journaled delta) is full-saved
        under the session's writer lock — no in-flight write can be
        torn by the fold — deleting the journal and every rotated
        segment.  ``compact=False`` leaves the on-disk base + journal
        pair untouched for the next load.
        """
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        folded = 0
        if compact:
            with self.session.exclusive():
                journal = DeltaJournal(journal_path(self.artifact_path))
                folded = len(journal.records()) if journal.exists() else 0
                self.session.artifact.save(self.artifact_path, fsync=self.fsync)
        return folded


def run_daemon(
    artifact_path: str,
    listen: str = DEFAULT_LISTEN,
    *,
    journal: bool = True,
    fsync: bool = False,
    cache_size: int = 1024,
    repair_path: str = "auto",
    radius_limit: Optional[int] = None,
    rebase_policy="auto",
    journal_max_bytes: Optional[int] = None,
    journal_max_records: Optional[int] = None,
    log=None,
) -> int:
    """The ``repro serve --listen`` loop: serve until shutdown, then compact.

    Prints ``listening on HOST:PORT`` to stdout with the **resolved**
    port (binding ``HOST:0`` picks a free port; drivers —
    :func:`spawn_daemon_process` included — parse that exact line, so
    no caller ever has to pre-pick a port and race); everything else
    goes through the module logger like the journal and the store.
    ``log`` is an optional extra sink for both lines (legacy hook;
    tests).  Installs SIGTERM/SIGINT handlers that trigger the same
    graceful shutdown as the ``shutdown`` op.  SIGKILL, by definition,
    skips compaction — that is what the journal is for.
    """
    daemon = ColoringDaemon(
        artifact_path,
        listen=listen,
        journal=journal,
        fsync=fsync,
        cache_size=cache_size,
        repair_path=repair_path,
        radius_limit=radius_limit,
        rebase_policy=rebase_policy,
        journal_max_bytes=journal_max_bytes,
        journal_max_records=journal_max_records,
    )
    host, port = daemon.start()
    # This exact stdout line is the port-discovery protocol; keep it a
    # print regardless of logging configuration.
    print(f"listening on {host}:{port}", flush=True)
    logger.info("listening on %s:%d", host, port)
    if log:
        log(f"listening on {host}:{port}")
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(
            signum, lambda _s, _f: daemon.request_shutdown()
        )
    try:
        daemon.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        folded = daemon.stop(compact=True)
    stats = daemon.session.cache_stats()
    summary = (
        f"shutdown: {daemon.requests_served} requests served, "
        f"{stats['deltas_applied']} deltas, {folded} journal records compacted"
    )
    logger.info("%s", summary)
    if log:
        log(summary)
    return 0


class DaemonClient:
    """A lockstep socket client for the daemon protocol.

    Obtain one via :func:`connect` — direct construction is deprecated
    (it still works, with a :class:`DeprecationWarning`) so every
    caller goes through the one client surface.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 30.0, *, _via_connect: bool = False
    ) -> None:
        if not _via_connect:
            warnings.warn(
                "constructing DaemonClient directly is deprecated; use "
                "repro.serving.connect('HOST:PORT')",
                DeprecationWarning,
                stacklevel=2,
            )
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")

    def request(self, request: Mapping) -> Dict[str, object]:
        """Send one request and block for its response line."""
        self._wfile.write(protocol.encode_request(request) + "\n")
        self._wfile.flush()
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("daemon closed the connection mid-request")
        return json.loads(line)

    def request_many(self, requests: List[Mapping]) -> List[Dict[str, object]]:
        """Lockstep batch: each request is acknowledged before the next."""
        return [self.request(request) for request in requests]

    def shutdown(self) -> Dict[str, object]:
        """Gracefully stop the daemon (it compacts its journal and exits)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best-effort
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SessionClient:
    """The in-process twin of :class:`DaemonClient`: same surface, no socket.

    Wraps a :class:`ServingSession` (building one from an artifact or
    an artifact path if needed) so tests and runners drive in-process
    and socket serving through one duck type.  ``shutdown`` answers the
    protocol's ``wire-only`` error — an in-process session has no
    process to stop — which keeps response streams honest rather than
    pretending.
    """

    def __init__(self, session: ServingSession) -> None:
        self.session = session

    def request(self, request: Mapping) -> Dict[str, object]:
        return self.session.query(request)

    def request_many(self, requests: List[Mapping]) -> List[Dict[str, object]]:
        return [self.request(request) for request in requests]

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        return None

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(
    target: Union[str, Tuple[str, int], ColoringArtifact, ServingSession],
    *,
    timeout: float = 30.0,
    **session_options,
) -> Union[DaemonClient, SessionClient]:
    """The one client factory: same duck-typed client either way.

    ``target`` may be:

    * a ``(host, port)`` tuple or a ``"HOST:PORT"`` address string —
      a socket :class:`DaemonClient` to a running daemon;
    * a path to an artifact JSON — the artifact is loaded and served
      in-process through a :class:`SessionClient`;
    * a :class:`ColoringArtifact` or a :class:`ServingSession` — also
      in-process.

    An existing file always wins over an address-shaped string (name a
    daemon as ``host:port``, not as a file).  ``session_options``
    (``repair_path``, ``cache_size``, ...) apply to in-process targets
    only.
    """
    if isinstance(target, ServingSession):
        return SessionClient(target)
    if isinstance(target, ColoringArtifact):
        return SessionClient(ServingSession(target, **session_options))
    if isinstance(target, tuple):
        host, port = target
        return DaemonClient(host, int(port), timeout=timeout, _via_connect=True)
    if isinstance(target, str):
        if os.path.exists(target):
            artifact = ColoringArtifact.load(target)
            return SessionClient(ServingSession(artifact, **session_options))
        try:
            host, port = parse_address(target)
        except ValueError:
            raise ValueError(
                f"connect target {target!r} is neither an existing artifact "
                "file nor a HOST:PORT address"
            ) from None
        return DaemonClient(host, port, timeout=timeout, _via_connect=True)
    raise TypeError(f"cannot connect to {type(target).__name__}")


def spawn_daemon_process(
    artifact_path: str,
    *,
    listen: str = DEFAULT_LISTEN,
    journal: bool = True,
    repair_path: str = "auto",
    extra_args: Optional[List[str]] = None,
    timeout: float = 30.0,
):
    """Start ``python -m repro serve --listen`` as a subprocess.

    Returns ``(process, host, port)`` once the daemon reports its bound
    address.  Used by the E13 runner, the chaos probe and the CLI tests —
    the SIGKILL experiments need a real process to kill.
    """
    import subprocess
    import sys
    import time

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    command = [sys.executable, "-m", "repro", "serve", "--listen", listen,
               "--artifact", artifact_path, "--repair-path", repair_path]
    if not journal:
        command.append("--no-journal")
    command.extend(extra_args or [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
        env=env,
    )
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            address = line.split("listening on ", 1)[1].strip()
            host, port = parse_address(address)
            return process, host, port
        if not line and process.poll() is not None:
            break
    process.kill()
    raise RuntimeError(f"daemon failed to start (last output: {line!r})")
