"""The persistent build product of the offline phase: ``ColoringArtifact``.

An artifact bundles everything the online plane needs to answer queries
without re-solving:

* the **graph** as an epoch-versioned :class:`repro.graphs.DeltaGraph`
  (CSR base + mutation overlay);
* the **coloring**, keyed by normalized endpoint pair — the one key
  that survives epochs, since snapshot edge indices shift as edges come
  and go;
* sparse **demand lists** (pair → sorted color tuple) for edges whose
  palette is constrained;
* the **palette table** (color → multiplicity), maintained incrementally
  by the repair engine;
* per-node **used-color bitmasks**, exposed as a per-epoch cached
  :class:`repro.coloring.greedy.UsedColorMasks` derived from the colors
  (derived, not primary: mid-repair the coloring is transiently
  improper, which a bitmask cannot represent — see
  :mod:`repro.serving.repair`).

Canonical artifacts (built by :func:`build_artifact`, or loaded from
JSON) carry the canonical priority-greedy coloring and accept deltas.
Lookup artifacts (wrapped around an arbitrary pipeline coloring via
:func:`artifact_from_coloring`) serve reads only — their coloring is
whatever the offline pipeline produced, so there is no canonical fixed
point for the repair engine to restore.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.coloring.greedy import UsedColorMasks
from repro.graphs.core import Graph
from repro.graphs.delta import DeltaGraph
from repro.serving.journal import (
    DeltaJournal,
    RotationPolicy,
    clear_segments,
    delta_record,
    journal_path,
    segment_paths,
)
from repro.serving.repair import (
    RepairError,
    RepairReport,
    apply_delete,
    apply_insert,
    apply_set_list,
    full_recompute,
    normalize_list,
)

Pair = Tuple[int, int]

#: On-disk format tag; bump on breaking layout changes.
ARTIFACT_FORMAT = "repro-coloring-artifact/v1"


def _pair(u: int, v: int) -> Pair:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class RebasePolicy:
    """When to fold the :class:`DeltaGraph` overlay into a fresh CSR base.

    Every overlay entry taxes every ``neighbors()`` call on its nodes,
    so a long-lived session must rebase once the overlay outgrows the
    base — but a rebase is an O(n + m) snapshot, so not after every
    delta.  The policy triggers when the overlay holds at least
    ``min_overlay`` entries **and** ``overlay_size / base_edges``
    reaches ``threshold``, which amortizes the O(m) fold against the
    Θ(threshold · m) deltas that grew the overlay.

    A rebase is epoch-preserving (the edge set is unchanged), so it is
    invisible to the serving plane's deterministic core: cached answers,
    per-epoch :class:`UsedColorMasks` and response streams are
    bit-identical between a rebasing session and a never-rebasing twin
    (pinned by the rebase twin tests).
    """

    threshold: float = 0.25
    min_overlay: int = 8

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold!r}")
        if self.min_overlay < 1:
            raise ValueError(f"min_overlay must be >= 1, got {self.min_overlay!r}")

    def should_rebase(self, graph: DeltaGraph) -> bool:
        overlay = graph.overlay_size
        if overlay < self.min_overlay:
            return False
        return overlay >= self.threshold * max(1, graph.base.num_edges)


def resolve_rebase_policy(value) -> Optional[RebasePolicy]:
    """Normalize a ``rebase_policy`` knob to a policy or ``None``.

    ``"auto"`` resolves to the default :class:`RebasePolicy`; ``None``
    and ``"off"`` disable automatic rebasing; a :class:`RebasePolicy`
    passes through.
    """
    if value is None or value == "off":
        return None
    if value == "auto":
        return RebasePolicy()
    if isinstance(value, RebasePolicy):
        return value
    raise ValueError(
        f"unknown rebase_policy {value!r}; expected 'auto', 'off', None "
        "or a RebasePolicy"
    )


class ColoringArtifact:
    """Graph + coloring + repair state, versioned by an epoch counter.

    The epoch advances on every absorbed delta (graph mutations bump the
    underlying :class:`DeltaGraph`; demand-list changes bump an artifact
    offset) and is the version tag serving caches fold into their keys.
    """

    def __init__(
        self,
        graph: DeltaGraph,
        colors: Dict[Pair, int],
        lists: Optional[Dict[Pair, Tuple[int, ...]]] = None,
        *,
        canonical: bool = True,
        builder: str = "canonical",
    ) -> None:
        self.graph = graph
        self.colors = colors
        self.lists: Dict[Pair, Tuple[int, ...]] = dict(lists or {})
        self.canonical = canonical
        self.builder = builder
        self._epoch_base = 0
        self._palette: Dict[int, int] = {}
        for c in colors.values():
            self._palette[c] = self._palette.get(c, 0) + 1
        self._masks: Optional[UsedColorMasks] = None
        self._masks_epoch = -1
        # Delta records pending a journal append: populated only when
        # journal tracking is on (loaded/saved artifacts), drained by
        # ``save``.  In-memory artifacts that are never persisted pay
        # nothing.  ``_journal_records`` counts records in the *active*
        # journal file (rotation policies cap it without re-reading the
        # file on every append).
        self._journal_tracking = False
        self._pending_deltas: List[Dict[str, object]] = []
        self._journal_records = 0

    # ------------------------------------------------------------------ meta
    @property
    def epoch(self) -> int:
        """Version counter covering graph *and* demand-list deltas."""
        return self._epoch_base + self.graph.epoch

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_colors(self) -> int:
        """Number of distinct colors currently in use."""
        return len(self._palette)

    @property
    def max_color(self) -> int:
        """Largest color in use, or ``-1`` on an edgeless graph."""
        return max(self._palette) if self._palette else -1

    def palette_table(self) -> Dict[int, int]:
        """Color → multiplicity, sorted by color (a defensive copy)."""
        return {c: self._palette[c] for c in sorted(self._palette)}

    def stats(self) -> Dict[str, object]:
        """Summary row for the ``stats`` query op and the CLI."""
        return {
            "epoch": self.epoch,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_colors": self.num_colors,
            "max_color": self.max_color,
            "num_lists": len(self.lists),
            "overlay_size": self.graph.overlay_size,
            "base_edges": self.graph.base.num_edges,
            "canonical": self.canonical,
            "builder": self.builder,
        }

    # ----------------------------------------------------------------- reads
    def color(self, u: int, v: int) -> int:
        """Current color of edge ``{u, v}``."""
        key = _pair(u, v)
        try:
            return self.colors[key]
        except KeyError:
            raise RepairError(
                f"edge {key} is not present", code="absent-edge"
            ) from None

    def masks(self) -> UsedColorMasks:
        """Per-node used-color bitmasks for the current epoch (cached)."""
        if self._masks is None or self._masks_epoch != self.epoch:
            self._masks = UsedColorMasks.from_pair_coloring(
                self.graph.num_nodes, self.colors
            )
            self._masks_epoch = self.epoch
        return self._masks

    def node_colors(self, v: int) -> List[int]:
        """Sorted colors on the edges incident to node ``v``.

        O(degree) direct scan — deliberately *not* via :meth:`masks`,
        whose per-epoch rebuild is O(m) and would cancel the incremental
        path's advantage under churn (one rebuild per delta).
        """
        if not 0 <= v < self.graph.num_nodes:
            raise RepairError(
                f"node {v} out of range for {self.graph.num_nodes} nodes",
                code="node-out-of-range",
            )
        colors = self.colors
        return sorted(colors[_pair(v, w)] for w in self.graph.neighbors(v))

    def schedule(self, v: int) -> List[Tuple[int, int]]:
        """Node ``v``'s transmission schedule: ``(color, neighbor)`` by color.

        In a proper edge coloring each color class is a matching, so the
        color doubles as a collision-free time slot — the slot in which
        ``v`` talks to that neighbor.
        """
        if not 0 <= v < self.graph.num_nodes:
            raise RepairError(
                f"node {v} out of range for {self.graph.num_nodes} nodes",
                code="node-out-of-range",
            )
        colors = self.colors
        return sorted(
            ((colors[_pair(v, w)], w) for w in self.graph.neighbors(v)),
        )

    # ---------------------------------------------------------------- deltas
    def insert(self, u: int, v: int, **kwargs) -> RepairReport:
        """Absorb an edge insertion (see :func:`repro.serving.repair.apply_insert`)."""
        self._require_canonical("insert")
        report = apply_insert(self, u, v, **kwargs)
        self._record_delta("insert", u, v, None)
        return report

    def delete(self, u: int, v: int, **kwargs) -> RepairReport:
        """Absorb an edge deletion (see :func:`repro.serving.repair.apply_delete`)."""
        self._require_canonical("delete")
        report = apply_delete(self, u, v, **kwargs)
        self._record_delta("delete", u, v, None)
        return report

    def set_list(
        self, u: int, v: int, colors: Optional[Sequence[int]], **kwargs
    ) -> RepairReport:
        """Absorb a demand-list change (see :func:`repro.serving.repair.apply_set_list`)."""
        self._require_canonical("set_list")
        report = apply_set_list(self, u, v, colors, **kwargs)
        self._record_delta("set_list", u, v, colors)
        return report

    def _record_delta(self, op: str, u: int, v: int, colors) -> None:
        """Queue a journal record for a just-absorbed delta (when tracking)."""
        if self._journal_tracking:
            self._pending_deltas.append(delta_record(self.epoch, op, u, v, colors))

    # ---------------------------------------------------------------- rebase
    def rebase(self) -> int:
        """Fold the graph overlay into a fresh CSR base; return entries folded.

        Epoch-preserving: the edge set, the coloring and every per-epoch
        cache (result cache entries, :class:`UsedColorMasks`) stay
        valid — a rebase is maintenance, not a delta, and is therefore
        never journaled (replay rebuilds its own overlay and may rebase
        on its own schedule without affecting the replayed state).
        """
        folded = self.graph.overlay_size
        if folded:
            self.graph.rebase()
        return folded

    def maybe_rebase(self, policy: Optional[RebasePolicy]) -> int:
        """Rebase iff ``policy`` says the overlay has outgrown the base.

        Returns the overlay entries folded (0 when no rebase happened).
        """
        if policy is not None and policy.should_rebase(self.graph):
            return self.rebase()
        return 0

    def _require_canonical(self, op: str) -> None:
        if not self.canonical:
            raise RepairError(
                f"cannot apply {op!r}: artifact built by {self.builder!r} is "
                "lookup-only (no canonical fixed point to repair towards); "
                "rebuild with build_artifact() to serve deltas",
                code="lookup-only",
            )

    # ------------------------------------------------- repair-engine hooks
    # Primary state is (colors, palette); masks invalidate via the epoch.
    def _assign(self, key: Pair, c: int) -> None:
        self.colors[key] = c
        self._palette[c] = self._palette.get(c, 0) + 1

    def _unassign(self, key: Pair, c: int) -> None:
        del self.colors[key]
        remaining = self._palette[c] - 1
        if remaining:
            self._palette[c] = remaining
        else:
            del self._palette[c]

    def _recolor(self, key: Pair, c_old: int, c_new: int) -> None:
        self.colors[key] = c_new
        remaining = self._palette[c_old] - 1
        if remaining:
            self._palette[c_old] = remaining
        else:
            del self._palette[c_old]
        self._palette[c_new] = self._palette.get(c_new, 0) + 1

    def _replace_coloring(self, colors: Dict[Pair, int]) -> None:
        self.colors = colors
        self._palette = {}
        for c in colors.values():
            self._palette[c] = self._palette.get(c, 0) + 1
        self._masks = None
        self._masks_epoch = -1

    def _bump_epoch(self) -> int:
        self._epoch_base += 1
        return self.epoch

    # ----------------------------------------------------------- invariants
    def verify(self) -> bool:
        """Check every artifact invariant; raises ``RepairError`` on drift.

        Properness (adjacent edges never share a color), demand-list
        respect, palette-table consistency, and — for canonical
        artifacts — bit-identity with a from-scratch
        :func:`~repro.serving.repair.full_recompute` of the current
        graph.  This is the twin-discipline anchor the tests lean on.
        """
        colors = self.colors
        present = set()
        for key in self.graph.edge_pairs():
            present.add(key)
            if key not in colors:
                raise RepairError(f"edge {key} has no color")
        if len(colors) != len(present):
            extra = sorted(set(colors) - present)[:3]
            raise RepairError(f"colors for absent edges: {extra}")
        for v in self.graph.nodes():
            seen = 0
            for w in self.graph.neighbors(v):
                bit = 1 << colors[_pair(v, w)]
                if seen & bit:
                    raise RepairError(f"color collision at node {v}")
                seen |= bit
        for key, demand in self.lists.items():
            if key in colors and colors[key] not in demand:
                raise RepairError(
                    f"edge {key} wears color {colors[key]} outside its list {demand}"
                )
        palette: Dict[int, int] = {}
        for c in colors.values():
            palette[c] = palette.get(c, 0) + 1
        if palette != self._palette:
            raise RepairError("palette table out of sync with colors")
        if self.canonical and colors != full_recompute(self.graph, self.lists):
            raise RepairError("coloring is not the canonical fixed point")
        return True

    # -------------------------------------------------------------- persist
    def to_json(self) -> Dict[str, object]:
        """A JSON-safe dict capturing the artifact at the current epoch."""
        return {
            "format": ARTIFACT_FORMAT,
            "builder": self.builder,
            "canonical": self.canonical,
            "epoch": self.epoch,
            "num_nodes": self.graph.num_nodes,
            "node_ids": list(self.graph.node_ids),
            "edges": [
                [u, v, self.colors[(u, v)]] for u, v in sorted(self.colors)
            ],
            "lists": [
                [u, v, list(self.lists[(u, v)])] for u, v in sorted(self.lists)
            ],
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "ColoringArtifact":
        """Rebuild an artifact persisted by :meth:`to_json`.

        The overlay is folded on save, so the loaded graph starts with a
        fresh CSR base; the epoch is restored as the artifact offset.
        """
        fmt = payload.get("format")
        if fmt != ARTIFACT_FORMAT:
            raise RepairError(f"unsupported artifact format {fmt!r}")
        edges = [(int(u), int(v)) for u, v, _c in payload["edges"]]
        graph = Graph(
            int(payload["num_nodes"]),
            edges,
            node_ids=[int(i) for i in payload["node_ids"]],
        )
        colors = {
            _pair(int(u), int(v)): int(c) for u, v, c in payload["edges"]
        }
        lists = {
            _pair(int(u), int(v)): normalize_list(cs)
            for u, v, cs in payload.get("lists", [])
        }
        artifact = cls(
            DeltaGraph(graph),
            colors,
            lists,
            canonical=bool(payload.get("canonical", True)),
            builder=str(payload.get("builder", "canonical")),
        )
        artifact._epoch_base = int(payload.get("epoch", 0))
        return artifact

    def _write_full(self, path: str, fsync: bool = False) -> None:
        """Atomically rewrite the full artifact JSON (journal untouched)."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _rotate(self, path: str, rotation: RotationPolicy, fsync: bool) -> None:
        """Online compact-and-rotate the active journal (cap was hit).

        Ordering is the durability argument: (1) the in-memory
        artifact — which already contains every journaled delta — is
        atomically full-saved, so from that instant every journal
        record is at or below the base epoch and replay skips it;
        (2) the active journal is renamed to the next ``.journal.N``
        segment; (3) segments beyond ``keep_segments`` are pruned.  A
        SIGKILL between any two steps loses nothing: before (1) the
        old base + journal replay; after (1) the new base supersedes
        whatever journal files remain.
        """
        from repro.obs import get_registry, tracer

        with tracer().span("journal.rotate", artifact=path) as span:
            self._write_full(path, fsync=fsync)
            active = journal_path(path)
            segments = segment_paths(path)
            if os.path.exists(active):
                next_n = 1
                if segments:
                    last = segments[-1]
                    next_n = int(last.rsplit(".", 1)[1]) + 1
                os.replace(active, f"{active}.{next_n}")
                segments.append(f"{active}.{next_n}")
            self._journal_records = 0
            pruned = 0
            if rotation.keep_segments >= 0:
                excess = segments[: max(0, len(segments) - rotation.keep_segments)]
                for old in excess:
                    os.remove(old)
                    pruned += 1
            span.set(segments=len(segments) - pruned, pruned=pruned)
        get_registry().counter("journal.rotations").inc()

    def save(
        self,
        path: str,
        *,
        journal: bool = False,
        fsync: bool = False,
        rotation: Optional[RotationPolicy] = None,
    ) -> None:
        """Persist the artifact at ``path``.

        ``journal=False`` (the default) writes the full snapshot: the
        artifact JSON is rewritten atomically (temp file + rename, the
        result store's ``compact`` idiom) and a now-superseded
        ``<path>.journal`` — rotated segments included — is deleted:
        everything they recorded is baked into the new base.

        ``journal=True`` appends the deltas absorbed since the last save
        to ``<path>.journal`` instead — O(deltas) disk work instead of
        O(m), the long-lived daemon's per-delta durability path.  It
        requires the artifact JSON to exist (first saves are full saves)
        and delta tracking to be on, which :meth:`load` and every full
        :meth:`save` arm automatically.  With a ``rotation`` policy, an
        active journal that outgrew a cap is compact-and-rotated after
        the append (see :meth:`_rotate`).
        """
        if journal:
            if not self._journal_tracking:
                raise RepairError(
                    "journal save needs delta tracking: load() the artifact or "
                    "full-save it once first"
                )
            if not os.path.exists(path):
                raise RepairError(
                    f"journal save without a base artifact at {path}; "
                    "full-save first"
                )
            DeltaJournal(journal_path(path), fsync=fsync).append(self._pending_deltas)
            self._journal_records += len(self._pending_deltas)
            self._pending_deltas = []
            if rotation is not None and rotation.should_rotate(
                journal_path(path), self._journal_records
            ):
                self._rotate(path, rotation, fsync)
            return
        self._write_full(path, fsync=fsync)
        DeltaJournal(journal_path(path)).clear()
        clear_segments(path)
        self._journal_tracking = True
        self._pending_deltas = []
        self._journal_records = 0

    @classmethod
    def load(cls, path: str) -> "ColoringArtifact":
        """Read an artifact written by :meth:`save`, replaying its journal.

        Rotated ``<path>.journal.N`` segments are replayed in ascending
        ``N``, then the active ``<path>.journal``: in every file, a
        record above the base JSON's epoch is re-absorbed in order and
        records the base already folded in are skipped, so the loaded
        artifact lands on the exact state of the last acknowledged
        delta — bit-identical, because each replayed delta repairs
        toward the same canonical fixed point the original session
        maintained.  (Under the fold-first rotation ordering, segments
        only ever hold already-folded records — the skip makes them
        harmless history.)  A torn trailing record (interrupted append)
        is skipped by the journal layer; an epoch that fails to line up
        raises :class:`RepairError`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            artifact = cls.from_json(json.load(handle))
        artifact._journal_tracking = True
        active = DeltaJournal(journal_path(path))
        journals = [DeltaJournal(p) for p in segment_paths(path)] + [active]
        for journal in journals:
            if not journal.exists():
                continue
            records = journal.records()
            for record in records:
                epoch = int(record["epoch"])
                if epoch <= artifact.epoch:
                    continue  # already folded into the base JSON
                op = record["op"]
                u, v = int(record["u"]), int(record["v"])
                if op == "insert":
                    artifact.insert(u, v)
                elif op == "delete":
                    artifact.delete(u, v)
                elif op == "set_list":
                    artifact.set_list(u, v, record.get("colors"))
                else:
                    raise RepairError(f"journal record with unknown op {op!r}")
                if artifact.epoch != epoch:
                    raise RepairError(
                        f"journal replay drifted: record epoch {epoch}, "
                        f"artifact epoch {artifact.epoch}"
                    )
            if journal is active:
                artifact._journal_records = len(records)
        # Replay re-queued the records it applied; they are already
        # durable in the journal, so a later journal save must not
        # re-append them.
        artifact._pending_deltas = []
        return artifact

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ColoringArtifact(n={self.num_nodes}, m={self.num_edges}, "
            f"colors={self.num_colors}, epoch={self.epoch}, "
            f"builder={self.builder!r})"
        )


# ---------------------------------------------------------------- builders
def build_artifact(
    graph: Graph,
    lists: Optional[Mapping[Pair, Sequence[int]]] = None,
) -> ColoringArtifact:
    """Offline build: the canonical artifact for ``graph``.

    ``lists`` optionally constrains a sparse subset of edges to demand
    lists (normalized on ingest).  The product accepts deltas and is
    the input to :class:`repro.serving.session.ServingSession`.
    """
    normalized: Dict[Pair, Tuple[int, ...]] = {}
    for (u, v), demand in (lists or {}).items():
        key = _pair(int(u), int(v))
        if not graph.has_edge(*key):
            raise RepairError(f"demand list for absent edge {key}")
        normalized[key] = normalize_list(demand)
    delta_graph = DeltaGraph(graph)
    colors = full_recompute(delta_graph, normalized)
    return ColoringArtifact(delta_graph, colors, normalized)


def artifact_from_coloring(
    graph: Graph,
    edge_colors: Sequence[int],
    *,
    builder: str = "pipeline",
    build_state: Optional[UsedColorMasks] = None,
) -> ColoringArtifact:
    """Wrap a pipeline's edge-indexed coloring as a lookup-only artifact.

    ``edge_colors[e]`` is the color of edge index ``e`` in ``graph`` —
    the shape every ``core/`` pipeline emits.  The artifact serves reads
    (color/schedule/palette lookups) but refuses deltas: an arbitrary
    pipeline coloring has no canonical fixed point to repair towards.
    ``build_state`` accepts the pipeline's maintained
    :class:`UsedColorMasks` (see ``ListColoringResult.build_state``) so
    the offline phase's masks seed the artifact's cache instead of
    being recomputed.
    """
    if len(edge_colors) != graph.num_edges:
        raise RepairError(
            f"coloring has {len(edge_colors)} entries for {graph.num_edges} edges"
        )
    edge_u, edge_v = graph.endpoint_arrays()
    colors = {
        _pair(int(edge_u[e]), int(edge_v[e])): int(edge_colors[e])
        for e in range(graph.num_edges)
    }
    artifact = ColoringArtifact(
        DeltaGraph(graph), colors, canonical=False, builder=builder
    )
    if build_state is not None:
        artifact._masks = build_state
        artifact._masks_epoch = artifact.epoch
    return artifact


def artifact_from_list_coloring(graph: Graph, result) -> ColoringArtifact:
    """Lookup artifact from a ``ListColoringResult`` (Theorem D.4 solve).

    When the solve captured its :class:`~repro.core.list_edge_coloring.ColoringBuildState`
    (``capture_build_state=True``), its masks seed the artifact's mask
    cache and its palette table is adopted wholesale — the offline
    phase's repair state survives into serving instead of being rebuilt.
    """
    edge_colors = [result.colors[e] for e in graph.edges()]
    state = getattr(result, "build_state", None)
    artifact = artifact_from_coloring(
        graph,
        edge_colors,
        builder="list_edge_coloring",
        build_state=None if state is None else state.masks,
    )
    if state is not None:
        artifact._palette = dict(state.palette)
    return artifact
