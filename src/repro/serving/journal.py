"""Append-only delta journal: artifact durability without rewrites.

A :class:`ColoringArtifact` persisted as JSON is a *full* snapshot —
rewriting it on every absorbed delta is O(m) disk work per O(1) change,
which is exactly the cost profile a long-lived serving daemon cannot
afford.  The journal is the append-only alternative, the serving-plane
analogue of the runtime's JSONL result store (:mod:`repro.runtime.store`):

* the journal lives **next to** the artifact JSON, at
  ``<artifact>.journal``;
* line 1 is a header ``{"format": "repro-coloring-journal/v1"}``;
* every later line is one absorbed delta, in application order::

      {"epoch": 12, "op": "insert",   "u": 3, "v": 9,  "colors": null}
      {"epoch": 13, "op": "delete",   "u": 0, "v": 4,  "colors": null}
      {"epoch": 14, "op": "set_list", "u": 1, "v": 7,  "colors": [2, 4, 6]}

  ``epoch`` is the artifact epoch *after* the delta was absorbed —
  strictly increasing, which is what makes replay verifiable and
  re-application idempotent (records at or below the base artifact's
  epoch are skipped).

**Durability contract.**  Appends flush per record (optionally fsync),
and — reusing the result store's torn-write healing idiom — an append
first truncates any torn trailing line left by an interrupted writer,
while reads simply skip a torn tail (with a warning naming the byte
offset).  A SIGKILLed daemon therefore loses at most the one delta it
was mid-append on, and every delta it *acknowledged* is recoverable:
``ColoringArtifact.load`` replays the journal over the base JSON and
lands bit-identically on the pre-kill state, because every replayed
delta repairs toward the same canonical fixed point the live session
maintained (see :mod:`repro.serving.repair`).

:func:`compact_artifact` folds the journal back into the artifact JSON
(the explicit rewrite, mirroring ``scenarios compact`` on the result
store); the daemon runs it on graceful shutdown.

**Rotation.**  A weeks-long daemon cannot let the active journal grow
without bound (unbounded disk, O(journal) replay).  A
:class:`RotationPolicy` caps the active journal by bytes and/or record
count; when a cap is hit, :meth:`ColoringArtifact.save` performs an
online *compact-and-rotate*: the in-memory artifact is atomically
full-saved (the fold — after it, every journal record is at or below
the base epoch), the active journal is renamed to the next
``<artifact>.journal.N`` segment, and segments beyond
``keep_segments`` are pruned.  The ordering is SIGKILL-safe at every
point: the fold lands first, so replay (which skips records at or
below the base epoch) never double-applies a rotated record, and a
kill between fold and rename merely leaves an already-superseded
active journal.  ``load()`` replays segments in ascending ``N`` and
then the active journal, under the same drift checks; a full save or
compaction deletes segments along with the journal.
"""

from __future__ import annotations

import json
import logging
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import get_registry, tracer

logger = logging.getLogger(__name__)

#: On-disk journal format tag; bump on breaking layout changes.
JOURNAL_FORMAT = "repro-coloring-journal/v1"

#: Fields of one delta record, in canonical order.
RECORD_FIELDS = ("epoch", "op", "u", "v", "colors")


def journal_path(artifact_path: str) -> str:
    """The journal's location next to an artifact JSON file."""
    return artifact_path + ".journal"


_SEGMENT_RE = re.compile(r"\.journal\.(\d+)$")


def segment_paths(artifact_path: str) -> List[str]:
    """Existing rotated segments ``<artifact>.journal.N``, ascending ``N``."""
    base = journal_path(artifact_path)
    directory = os.path.dirname(base) or "."
    name = os.path.basename(base)
    found = []
    if os.path.isdir(directory):
        for entry in os.listdir(directory):
            if entry.startswith(name + "."):
                match = _SEGMENT_RE.search(entry)
                if match:
                    found.append((int(match.group(1)), os.path.join(directory, entry)))
    return [path for _n, path in sorted(found)]


def clear_segments(artifact_path: str) -> None:
    """Delete every rotated segment (a full save superseded them all)."""
    for path in segment_paths(artifact_path):
        os.remove(path)


@dataclass(frozen=True)
class RotationPolicy:
    """Caps on the active journal that trigger compact-and-rotate.

    ``max_bytes`` / ``max_records`` bound the active journal (either
    may be ``None`` for uncapped); ``keep_segments`` bounds how many
    rotated ``<artifact>.journal.N`` segments are retained — older
    segments are pruned, which is safe because the fold-first rotation
    ordering means a segment never holds the only copy of a record.
    """

    max_bytes: Optional[int] = None
    max_records: Optional[int] = None
    keep_segments: int = 2

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_records"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")
        if self.max_bytes is None and self.max_records is None:
            raise ValueError("rotation policy needs max_bytes and/or max_records")
        if self.keep_segments < 0:
            raise ValueError(f"keep_segments must be >= 0, got {self.keep_segments!r}")

    def should_rotate(self, path: str, records: int) -> bool:
        """Has the active journal at ``path`` outgrown a cap?"""
        if self.max_records is not None and records >= self.max_records:
            return True
        if (
            self.max_bytes is not None
            and os.path.exists(path)
            and os.path.getsize(path) >= self.max_bytes
        ):
            return True
        return False


def resolve_rotation(value) -> Optional[RotationPolicy]:
    """Normalize a rotation knob: ``None``/``"off"`` disable, a policy passes."""
    if value is None or value == "off":
        return None
    if isinstance(value, RotationPolicy):
        return value
    raise ValueError(
        f"unknown rotation {value!r}; expected None, 'off' or a RotationPolicy"
    )


def delta_record(epoch: int, op: str, u: int, v: int, colors=None) -> Dict[str, object]:
    """One canonical journal record for an absorbed delta."""
    return {
        "epoch": int(epoch),
        "op": str(op),
        "u": int(u),
        "v": int(v),
        "colors": None if colors is None else [int(c) for c in colors],
    }


class JournalError(ValueError):
    """The journal is unreadable or inconsistent with its artifact."""


class DeltaJournal:
    """An append-only JSONL file of absorbed deltas next to an artifact.

    The file layer only: records in, records out, torn tails healed.
    Interpretation (replay, epoch matching) belongs to
    :meth:`repro.serving.artifact.ColoringArtifact.load`.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def clear(self) -> None:
        """Delete the journal file (after a full save folded it in)."""
        if os.path.exists(self.path):
            os.remove(self.path)

    # ------------------------------------------------------------- appending
    def _heal_torn_tail(self) -> None:
        """Truncate a torn trailing line before appending after it.

        Same idiom as ``ResultStore._heal_torn_tail``: an interrupted
        append leaves a fragment with no newline; writing new records
        after it would corrupt the middle of the file, so the fragment
        is dropped (the delta it belonged to was never acknowledged).
        """
        if not os.path.exists(self.path):
            return
        size = os.path.getsize(self.path)
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            content = handle.read()
            keep = content.rfind(b"\n") + 1
            handle.truncate(keep)
        logger.warning(
            "%s: healed torn trailing record at byte offset %d (%d bytes dropped)",
            self.path,
            keep,
            size - keep,
        )
        get_registry().counter("journal.heals").inc()

    def append(self, records: List[Dict[str, object]]) -> None:
        """Append delta records (creating the file, header first, if new)."""
        if not records:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with tracer().span("journal.append", records=len(records)):
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._heal_torn_tail()
            with open(self.path, "a", encoding="utf-8") as handle:
                if fresh:
                    handle.write(json.dumps({"format": JOURNAL_FORMAT}) + "\n")
                for record in records:
                    row = {field: record.get(field) for field in RECORD_FIELDS}
                    handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
                    handle.write("\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        get_registry().counter("journal.appends").inc(len(records))

    # --------------------------------------------------------------- reading
    def records(self) -> List[Dict[str, object]]:
        """All complete delta records, in file order.

        A torn trailing line is skipped (the interrupted append never
        acknowledged); a corrupt line anywhere else, a missing or wrong
        header, or non-increasing epochs raise :class:`JournalError` —
        those mean the file was edited, not interrupted.
        """
        if not self.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        records: List[Dict[str, object]] = []
        header_seen = False
        last_epoch = None
        for lineno, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            torn = lineno == len(lines) - 1 and not line.endswith("\n")
            try:
                row = json.loads(stripped)
            except json.JSONDecodeError:
                if torn:
                    logger.warning(
                        "%s: skipping torn trailing record (line %d); the "
                        "delta it carried was never acknowledged",
                        self.path,
                        lineno + 1,
                    )
                    break
                raise JournalError(
                    f"{self.path}:{lineno + 1}: corrupt record in the middle "
                    "of the journal"
                ) from None
            if not header_seen:
                fmt = row.get("format") if isinstance(row, dict) else None
                if fmt != JOURNAL_FORMAT:
                    raise JournalError(
                        f"{self.path}: unsupported journal format {fmt!r}"
                    )
                header_seen = True
                continue
            if not isinstance(row, dict) or row.get("op") is None:
                raise JournalError(f"{self.path}:{lineno + 1}: malformed delta record")
            epoch = int(row.get("epoch", -1))
            if last_epoch is not None and epoch <= last_epoch:
                raise JournalError(
                    f"{self.path}:{lineno + 1}: non-increasing epoch "
                    f"{epoch} after {last_epoch}"
                )
            last_epoch = epoch
            records.append(row)
        return records


def compact_artifact(path: str, fsync: bool = False) -> int:
    """Fold ``<path>.journal`` into the artifact JSON; return records folded.

    Loads the artifact (which replays the journal), rewrites the full
    JSON atomically, and deletes the journal — the serving-plane
    ``compact``, run by the daemon on graceful shutdown and by
    ``python -m repro serve --compact``.  A journal-less artifact
    compacts to itself (returns 0).
    """
    from repro.serving.artifact import ColoringArtifact

    with tracer().span("journal.compact", artifact=path) as span:
        journal = DeltaJournal(journal_path(path), fsync=fsync)
        folded = len(journal.records()) if journal.exists() else 0
        artifact = ColoringArtifact.load(path)
        artifact.save(path, fsync=fsync)
        span.set(folded=folded)
    get_registry().counter("journal.compactions").inc()
    return folded
