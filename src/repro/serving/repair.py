"""Bounded incremental repair: the canonical coloring and its twin paths.

The serving plane maintains one invariant across every delta it absorbs:
the artifact's coloring is always **the** canonical priority-greedy edge
coloring of the current graph.  The canonical coloring is defined purely
by the edge set (and the sparse demand lists):

    Order edges by their normalized endpoint pair ``(u, v)`` with
    ``u < v``, lexicographically.  Every edge receives the smallest
    allowed color (smallest member of its demand list, or the minimum
    excludant of an open palette) that is not used by any
    *higher-priority* adjacent edge — an adjacent edge with a smaller
    pair.

Because each edge's color is a function of strictly higher-priority
colors only, the coloring is a unique deterministic fixed point of the
edge set: *any* procedure that reaches the fixed point produces
bit-identical colors.  That is the twin discipline of this module:

* :func:`full_recompute` walks every edge in pair order — the obvious
  O(m) construction, and the ``recompute`` repair path;
* :func:`apply_insert` / :func:`apply_delete` / :func:`apply_set_list`
  repair the coloring after a single delta by processing a min-heap
  worklist of *possibly-affected* edges in pair order — the
  ``incremental`` path, O(repair radius) instead of O(m).

Worklist correctness rests on one invariant: every edge pushed while
popping edge ``p`` has a strictly larger pair than ``p``, and the heap
pops in increasing pair order, so when an edge is popped all of its
higher-priority neighbors already carry final colors.  Each edge is
popped at most once per delta (a later pop can only push edges larger
than itself, hence larger than anything already popped).

The cascade is pruned with an exact affectedness test.  When a
higher-priority neighbor of ``f`` changes color from ``c_old`` to
``c_new``, the canonical color of ``f`` can change only if

* ``color(f) == c_new`` — ``f`` is now in conflict, or
* ``color(f) > c_old`` — ``c_old`` may have been freed below ``f``
  (deletions and recolors free a color; pure insertions free nothing).

Anything else leaves ``f``'s greedy scan unchanged: a newly blocked
color above ``color(f)`` is never reached, and a newly blocked color
below ``color(f)`` was necessarily already blocked (otherwise the scan
would have chosen it, not ``color(f)``).

Mid-worklist the coloring is transiently *improper* — a just-inserted
or just-recolored edge may share a color with a lower-priority neighbor
until that neighbor is popped.  This is why the engine computes blocked
sets by scanning neighbor colors directly instead of consulting the
artifact's per-node used-color bitmasks: a bitmask cannot represent the
transient multiplicity.  The artifact therefore treats its
:class:`~repro.coloring.greedy.UsedColorMasks` as a per-epoch cache
derived from the colors, not as primary state.

When the number of popped edges exceeds ``radius_limit`` the engine
abandons the worklist and falls back to :func:`full_recompute` on the
mutated graph — a different route to the same fixed point, so the
result stays bit-identical; only the :class:`RepairReport` cost fields
differ, and those never enter result digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.artifact import ColoringArtifact

Pair = Tuple[int, int]

#: Recognized values of the ``repair_path`` knob.
REPAIR_PATHS = ("auto", "incremental", "recompute")

#: Default worklist budget before the incremental path falls back to a
#: from-scratch recompute of the mutated graph.
DEFAULT_RADIUS_LIMIT = 256


class RepairError(ValueError):
    """A delta cannot be absorbed (e.g. an edge's demand list is exhausted).

    ``code`` is the stable machine-readable failure class from
    :data:`repro.serving.protocol.ERROR_CODES` (default
    ``"repair-failed"``); the serving plane folds it into the
    structured error response so clients never parse message text.
    """

    def __init__(self, message: str, *, code: str = "repair-failed") -> None:
        super().__init__(message)
        self.code = code


def _pair(u: int, v: int) -> Pair:
    return (u, v) if u < v else (v, u)


def resolve_repair_path(value: Optional[str]) -> str:
    """Normalize a ``repair_path`` knob value to a concrete path.

    ``auto`` (and ``None``) resolve to ``incremental`` — the path the
    serving plane exists for; ``recompute`` forces the from-scratch
    twin.  Unknown values raise ``ValueError``.
    """
    if value is None or value == "auto":
        return "incremental"
    if value not in REPAIR_PATHS:
        raise ValueError(
            f"unknown repair_path {value!r}; expected one of {REPAIR_PATHS}"
        )
    return value


def normalize_list(colors: Iterable[int]) -> Tuple[int, ...]:
    """Canonicalize a demand list: sorted distinct non-negative ints.

    The canonical rule says "smallest member of the list", so list order
    must not carry information — normalization makes that explicit.
    """
    normalized = tuple(sorted(set(int(c) for c in colors)))
    if not normalized:
        raise RepairError("a demand list must contain at least one color", code="bad-list")
    if normalized[0] < 0:
        raise RepairError(
            f"demand list contains negative color {normalized[0]}", code="bad-list"
        )
    return normalized


def choose_color(blocked: int, demand: Optional[Tuple[int, ...]]) -> int:
    """The canonical color under a blocked-color bitmask.

    Open palette: the minimum excludant of ``blocked``.  Demand list:
    the smallest listed color whose bit is clear; raises
    :class:`RepairError` when the list is exhausted.
    """
    if demand is None:
        # Lowest clear bit of ``blocked``: identical to
        # UsedColorMasks.smallest_free, inlined on the hot path.
        return (~blocked & (blocked + 1)).bit_length() - 1
    for c in demand:
        if not (blocked >> c) & 1:
            return c
    raise RepairError(
        f"demand list {demand} exhausted (blocked mask {blocked:#x})",
        code="list-exhausted",
    )


@dataclass(frozen=True)
class RepairReport:
    """Cost accounting for one absorbed delta.

    These are *path-dependent* observables (the two repair paths touch
    different numbers of edges while converging on the same coloring),
    so the serving runner routes them into ``timing``-style metadata —
    never into result payloads that cross-path diffs compare.
    """

    op: str
    path: str
    epoch: int
    touched: int
    recolored: int
    fallback: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "path": self.path,
            "epoch": self.epoch,
            "touched": self.touched,
            "recolored": self.recolored,
            "fallback": self.fallback,
        }


# --------------------------------------------------------------------- twins
def full_recompute(
    graph,
    lists: Optional[Dict[Pair, Tuple[int, ...]]] = None,
) -> Dict[Pair, int]:
    """The canonical coloring from scratch: every edge in pair order.

    ``graph`` is anything with ``edge_pairs()`` (a
    :class:`repro.graphs.DeltaGraph` or a CSR ``Graph``); ``lists`` maps
    a sparse subset of pairs to normalized demand lists.
    """
    lists = lists or {}
    if hasattr(graph, "edge_pairs"):
        pairs = graph.edge_pairs()
    else:  # CSR Graph: endpoint pairs by edge index
        pairs = (graph.edge_endpoints(e) for e in graph.edges())
    colors: Dict[Pair, int] = {}
    masks: Dict[int, int] = {}
    for key in sorted(pairs):
        u, v = key
        blocked = masks.get(u, 0) | masks.get(v, 0)
        c = choose_color(blocked, lists.get(key))
        colors[key] = c
        bit = 1 << c
        masks[u] = masks.get(u, 0) | bit
        masks[v] = masks.get(v, 0) | bit
    return colors


def _blocked_mask(artifact: "ColoringArtifact", key: Pair) -> int:
    """Colors of the higher-priority edges adjacent to ``key``.

    Scans both endpoint neighborhoods and keeps only edges with a
    smaller pair — the artifact's per-node masks cannot be used here
    because they include lower-priority colors too (and may be stale
    mid-repair, see the module docstring).
    """
    graph = artifact.graph
    colors = artifact.colors
    blocked = 0
    for a, b in (key, (key[1], key[0])):
        for w in graph.neighbors(a):
            if w == b:
                continue
            q = (a, w) if a < w else (w, a)
            if q < key:
                blocked |= 1 << colors[q]
    return blocked


def _run_worklist(
    artifact: "ColoringArtifact",
    seeds: Iterable[Pair],
    radius_limit: int,
) -> Tuple[int, int, bool]:
    """Drain the repair worklist; returns ``(touched, recolored, overflow)``.

    On overflow (more than ``radius_limit`` pops) the artifact is left
    mid-repair and the caller must fall back to a full recompute.
    """
    heap: List[Pair] = []
    queued: Set[Pair] = set()
    for key in seeds:
        if key not in queued:
            queued.add(key)
            heappush(heap, key)
    touched = 0
    recolored = 0
    graph = artifact.graph
    colors = artifact.colors
    lists = artifact.lists
    while heap:
        key = heappop(heap)
        queued.discard(key)
        touched += 1
        if touched > radius_limit:
            return touched, recolored, True
        # One adjacency pass per pop: higher-priority neighbors feed the
        # blocked mask, lower-priority ones are kept as push candidates.
        blocked = 0
        lower: List[Pair] = []
        for a, b in (key, (key[1], key[0])):
            for w in graph.neighbors(a):
                if w == b:
                    continue
                q = (a, w) if a < w else (w, a)
                if q < key:
                    blocked |= 1 << colors[q]
                else:
                    lower.append(q)
        c_old = colors[key]
        c_new = choose_color(blocked, lists.get(key))
        if c_new == c_old:
            continue
        recolored += 1
        artifact._recolor(key, c_old, c_new)  # noqa: SLF001 - engine is the friend
        # Exact affectedness test (module docstring): only lower-priority
        # neighbors that now conflict with c_new or might reclaim c_old.
        for q in lower:
            if q not in queued:
                cf = colors[q]
                if cf == c_new or cf > c_old:
                    queued.add(q)
                    heappush(heap, q)
    return touched, recolored, False


def _fallback_recompute(artifact: "ColoringArtifact") -> None:
    colors = full_recompute(artifact.graph, artifact.lists)
    artifact._replace_coloring(colors)  # noqa: SLF001 - engine is the friend


# -------------------------------------------------------------------- deltas
def apply_insert(
    artifact: "ColoringArtifact",
    u: int,
    v: int,
    *,
    path: str = "auto",
    radius_limit: Optional[int] = None,
) -> RepairReport:
    """Insert edge ``{u, v}`` and restore the canonical coloring."""
    path = resolve_repair_path(path)
    limit = DEFAULT_RADIUS_LIMIT if radius_limit is None else radius_limit
    key = _pair(u, v)
    artifact.graph.insert_edge(u, v)
    epoch = artifact.epoch
    if path == "recompute":
        _fallback_recompute(artifact)
        return RepairReport("insert", path, epoch, artifact.graph.num_edges, 0, False)
    # Color the new edge first (its canonical color depends only on
    # higher-priority neighbors, all final).  An insertion only *adds*
    # constraints, so the only directly affected edges are
    # lower-priority neighbors already wearing the new edge's color.
    colors = artifact.colors
    blocked = 0
    lower: List[Pair] = []
    for a, b in (key, (key[1], key[0])):
        for w in artifact.graph.neighbors(a):
            if w == b:
                continue
            q = (a, w) if a < w else (w, a)
            if q < key:
                blocked |= 1 << colors[q]
            else:
                lower.append(q)
    c_new = choose_color(blocked, artifact.lists.get(key))
    artifact._assign(key, c_new)  # noqa: SLF001
    seeds = [q for q in lower if colors[q] == c_new]
    touched, recolored, overflow = _run_worklist(artifact, seeds, limit)
    if overflow:
        _fallback_recompute(artifact)
        return RepairReport(
            "insert", path, epoch, touched + artifact.graph.num_edges, recolored, True
        )
    return RepairReport("insert", path, epoch, touched + 1, recolored + 1, False)


def apply_delete(
    artifact: "ColoringArtifact",
    u: int,
    v: int,
    *,
    path: str = "auto",
    radius_limit: Optional[int] = None,
) -> RepairReport:
    """Delete edge ``{u, v}`` and restore the canonical coloring."""
    path = resolve_repair_path(path)
    limit = DEFAULT_RADIUS_LIMIT if radius_limit is None else radius_limit
    key = _pair(u, v)
    if not artifact.graph.has_edge(u, v):
        raise RepairError(f"edge {key} is not present", code="absent-edge")
    c_del = artifact.colors[key]
    # Seeds must be collected *before* the edge disappears from
    # neighbor rows: lower-priority neighbors that might now reclaim
    # the freed color ``c_del``.
    seeds: List[Pair] = []
    for a, b in (key, (key[1], key[0])):
        for w in artifact.graph.neighbors(a):
            if w == b:
                continue
            q = (a, w) if a < w else (w, a)
            if q > key and artifact.colors[q] > c_del:
                seeds.append(q)
    artifact.graph.delete_edge(u, v)
    epoch = artifact.epoch
    artifact._unassign(key, c_del)  # noqa: SLF001
    if path == "recompute":
        _fallback_recompute(artifact)
        return RepairReport("delete", path, epoch, artifact.graph.num_edges, 0, False)
    touched, recolored, overflow = _run_worklist(artifact, seeds, limit)
    if overflow:
        _fallback_recompute(artifact)
        return RepairReport(
            "delete", path, epoch, touched + artifact.graph.num_edges, recolored, True
        )
    return RepairReport("delete", path, epoch, touched, recolored, False)


def apply_set_list(
    artifact: "ColoringArtifact",
    u: int,
    v: int,
    colors: Optional[Sequence[int]],
    *,
    path: str = "auto",
    radius_limit: Optional[int] = None,
) -> RepairReport:
    """Change (or clear, with ``None``) the demand list of edge ``{u, v}``.

    A demand change is a *constraint* delta, not a graph delta — the
    edge set is unchanged, but the edge's canonical color may move,
    which cascades exactly like a recolor.  The artifact's epoch is
    bumped so caches keyed on it invalidate.
    """
    path = resolve_repair_path(path)
    limit = DEFAULT_RADIUS_LIMIT if radius_limit is None else radius_limit
    key = _pair(u, v)
    if not artifact.graph.has_edge(u, v):
        raise RepairError(f"edge {key} is not present", code="absent-edge")
    if colors is None:
        artifact.lists.pop(key, None)
    else:
        artifact.lists[key] = normalize_list(colors)
    # Demand deltas version through the artifact, not the graph overlay.
    epoch = artifact._bump_epoch()  # noqa: SLF001
    if path == "recompute":
        _fallback_recompute(artifact)
        return RepairReport(
            "set_list", path, epoch, artifact.graph.num_edges, 0, False
        )
    touched, recolored, overflow = _run_worklist(artifact, [key], limit)
    if overflow:
        _fallback_recompute(artifact)
        return RepairReport(
            "set_list", path, epoch, touched + artifact.graph.num_edges, recolored, True
        )
    return RepairReport("set_list", path, epoch, touched, recolored, False)
