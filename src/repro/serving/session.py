"""The online serving loop: sessions, batched queries, keyed result cache.

A :class:`ServingSession` fronts a :class:`~repro.serving.artifact.ColoringArtifact`
with the request/response surface of the ``repro-serving/v1`` wire
protocol — :mod:`repro.serving.protocol` is the normative spec; this
module implements it for in-process callers (the CLI, the
``serving_churn`` runner) and for the daemon that shares the session
over a socket.

**Concurrency (reader/writer epochs).**  The session is safe for many
threads: read ops (``color`` / ``node_palette`` / ``schedule`` /
``stats``) execute *concurrently* under the shared side of a
writer-preferring readers/writer lock, each against a snapshot of the
current epoch (the lock guarantees no write moves the epoch mid-read);
write ops (``insert`` / ``delete`` / ``set_list`` / ``rebase``)
serialize on the exclusive side, which establishes the **total order**
the twin discipline requires — every write response carries the unique
epoch it produced, and any interleaving of clients is bit-identical to
the serial schedule that replays the writes in epoch order (pinned by
the linearizability tests).  The lock exports the
``serving.readers_active`` and ``serving.write_queue_depth`` gauges.
:attr:`ServingSession.write_hook`, when set, is invoked inside the
writer critical section after each successful delta — the daemon hangs
its journal-before-ack persistence there, so journal order equals
epoch order equals ack order.

Read ops are answered through a keyed LRU cache (its own small mutex,
so concurrent readers share hits).  Keys reuse the runtime's
content-key recipe (:func:`repro.runtime.spec.canonical_json` +
truncated sha256, the exact idiom of ``spec.cache_key``) over
``{"epoch": artifact.epoch, "request": request}`` — folding the epoch
in means a delta never serves a stale answer: old-epoch entries simply
stop being addressable and age out of the LRU.  Cached entries are
isolated by **defensive deep copies** on both put and hit: a caller
mutating a response it received can never corrupt the answer a later
identical request sees.  Delta ops are never cached (they are
mutations) and their *reports* carry path-dependent cost fields, so
:meth:`ServingSession.serve_batch` keeps reports out of the response
stream's deterministic core (see the ``serving_churn`` runner, which
digests responses across ``repair_path`` values).

Long-lived sessions stay bounded: :attr:`ServingSession.reports` is a
ring buffer of the most recent ``reports_cap`` repair reports (older
ones age out), while :meth:`cache_stats` carries the lossless totals —
``deltas_applied``, ``touched``, ``recolored``, ``fallbacks``,
``rebases``, ``overlay_folded`` — so observability never requires
unbounded memory.  The ``rebase`` op (and the automatic
:class:`~repro.serving.artifact.RebasePolicy`) folds the delta overlay
into a fresh CSR base; it is epoch-preserving, so its response carries
nothing policy-dependent and rebasing/never-rebasing twins answer
identical streams (``stats`` is the one deliberately policy-dependent
op: ``overlay_size`` / ``base_edges`` are observability fields).

Every response carries ``ok`` — failed requests answer the protocol's
structured error shape (``{"ok": False, "error": ..., "code": ...}``
with a stable machine code) instead of poisoning the batch, mirroring
the runtime's quarantine philosophy: one bad cell never kills the
sweep.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from repro.obs import get_registry, tracer
from repro.runtime.spec import canonical_json
from repro.serving import protocol
from repro.serving.artifact import ColoringArtifact, resolve_rebase_policy
from repro.serving.protocol import (
    DeltaRequest,
    ProtocolError,
    QueryRequest,
    RebaseRequest,
    ShutdownRequest,
    StatsRequest,
)
from repro.serving.repair import RepairError, resolve_repair_path

#: Read-only ops eligible for the result cache (re-exported from the
#: protocol module, which is normative).
READ_OPS = protocol.READ_OPS
#: Mutating ops routed to the repair engine.
DELTA_OPS = protocol.DELTA_OPS
#: Maintenance ops: never cached, never journaled, epoch-preserving.
CONTROL_OPS = protocol.CONTROL_OPS

#: Default size of the per-session repair-report ring buffer.
DEFAULT_REPORTS_CAP = 256

#: Repair-radius histogram buckets (touched-node counts, not seconds).
RADIUS_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)


def result_cache_key(epoch: int, request: Mapping) -> str:
    """Content key for a read request at an artifact epoch.

    Same construction as :func:`repro.runtime.spec.cache_key`: canonical
    JSON (sorted keys, no whitespace drift) hashed with sha256 and
    truncated — two requests collide exactly when they ask the same
    question of the same artifact version.
    """
    payload = canonical_json({"epoch": epoch, "request": dict(request)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class _ReadWriteLock:
    """Writer-preferring readers/writer lock for epoch-snapshot serving.

    Any number of readers share the lock; a writer is exclusive.  Once
    a writer is *waiting*, new readers queue behind it — writers are
    never starved, and the write queue drains in arrival order under
    the condition variable, which is what makes write epochs a total
    order.  The current levels are exported as the
    ``serving.readers_active`` and ``serving.write_queue_depth``
    gauges.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        registry = get_registry()
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            registry.gauge("serving.readers_active").set(self._readers)
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                registry.gauge("serving.readers_active").set(self._readers)
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        registry = get_registry()
        with self._cond:
            self._writers_waiting += 1
            registry.gauge("serving.write_queue_depth").set(self._writers_waiting)
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            registry.gauge("serving.write_queue_depth").set(self._writers_waiting)
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class ServingSession:
    """A query/delta session over one artifact, with an LRU answer cache.

    Safe for concurrent use from many threads (see the module
    docstring): reads share, writes serialize.  ``repair_path`` pins
    which twin absorbs deltas (``auto`` → ``incremental``);
    ``radius_limit`` bounds the incremental worklist before it falls
    back to recompute.  Cache statistics are exposed via
    :meth:`cache_stats` and deliberately kept *out* of responses — they
    are observability, not answers.
    """

    def __init__(
        self,
        artifact: ColoringArtifact,
        *,
        cache_size: int = 1024,
        repair_path: str = "auto",
        radius_limit: Optional[int] = None,
        rebase_policy="auto",
        reports_cap: int = DEFAULT_REPORTS_CAP,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if reports_cap < 0:
            raise ValueError("reports_cap must be non-negative")
        self.artifact = artifact
        self.repair_path = resolve_repair_path(repair_path)
        self.radius_limit = radius_limit
        self.rebase_policy = resolve_rebase_policy(rebase_policy)
        self._cache: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_mutex = threading.Lock()
        self._lock = _ReadWriteLock()
        #: Called inside the writer critical section after every
        #: successful delta, with the about-to-be-returned response.
        #: The daemon sets this to its journal append so an absorbed
        #: delta is durable *before* its acknowledgment escapes the
        #: lock — journal order equals epoch order equals ack order.
        self.write_hook: Optional[Callable[[Dict[str, object]], None]] = None
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._deltas_applied = 0
        self._touched_total = 0
        self._recolored_total = 0
        self._fallbacks_total = 0
        self._rebases = 0
        self._overlay_folded = 0
        #: Ring buffer of the most recent repair reports (observability
        #: only; lossless totals live in :meth:`cache_stats`).
        self.reports: Deque[Dict[str, object]] = deque(maxlen=reports_cap)

    # ----------------------------------------------------------------- cache
    def cache_stats(self) -> Dict[str, int]:
        """Observability counters: cache traffic, delta totals, rebases.

        The delta totals (``deltas_applied`` / ``touched`` /
        ``recolored`` / ``fallbacks``) are lossless even after the
        :attr:`reports` ring buffer has aged individual reports out —
        the bounded-memory observability contract for long-lived
        sessions.
        """
        with self._cache_mutex:
            stats = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._cache),
                "capacity": self._cache_size,
            }
        stats.update(
            {
                "deltas_applied": self._deltas_applied,
                "touched": self._touched_total,
                "recolored": self._recolored_total,
                "fallbacks": self._fallbacks_total,
                "rebases": self._rebases,
                "overlay_folded": self._overlay_folded,
                "reports_retained": len(self.reports),
                "reports_cap": self.reports.maxlen,
            }
        )
        # Mirror the totals into the process-wide metrics registry (as
        # gauges, so one snapshot covers all three planes) without
        # changing this method's long-standing return shape.
        get_registry().update(stats, prefix="serving.cache.")
        return stats

    def _cache_get(self, key: str) -> Optional[Dict[str, object]]:
        with self._cache_mutex:
            cached = self._cache.get(key)
            if cached is None:
                self._misses += 1
                return None
            self._hits += 1
            self._cache.move_to_end(key)
            # Defensive copy: the cached entry is private to the cache, so
            # a caller mutating its answer cannot corrupt later hits.
            return copy.deepcopy(cached)

    def _cache_put(self, key: str, response: Dict[str, object]) -> None:
        if self._cache_size == 0:
            return
        with self._cache_mutex:
            self._cache[key] = copy.deepcopy(response)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------ locks
    def exclusive(self):
        """The writer critical section, for callers outside :meth:`query`
        (the daemon's final compacting save; tests)."""
        return self._lock.write()

    # --------------------------------------------------------------- serving
    def query(self, request: Mapping) -> Dict[str, object]:
        """Answer one request; never raises on a bad request.

        Every returned dict is the caller's to keep: cached answers are
        deep-copied on put and on hit, so mutating a response never
        corrupts the cache.  Reads run under the shared lock (many
        threads answer concurrently at a stable epoch); writes run
        under the exclusive lock, in total order.
        """
        try:
            parsed = protocol.parse_request(request)
        except ProtocolError as exc:
            return exc.response.to_wire()
        op = parsed.op
        request = protocol.strip_envelope(request)
        try:
            if isinstance(parsed, (QueryRequest, StatsRequest)):
                with self._lock.read():
                    with tracer().span("serving.query", op=op) as span:
                        key = result_cache_key(self.artifact.epoch, request)
                        cached = self._cache_get(key)
                        if cached is not None:
                            span.set(cache_hit=True)
                            return cached
                        response = self._answer_read(parsed)
                        self._cache_put(key, response)
                        span.set(cache_hit=False)
                        return response
            if isinstance(parsed, DeltaRequest):
                with self._lock.write():
                    with tracer().span("serving.delta", op=op) as span:
                        response = self._apply_delta(parsed, span)
                        if self.write_hook is not None:
                            # Durability before acknowledgment, inside the
                            # writer critical section: journal order is
                            # epoch order is ack order.
                            self.write_hook(response)
                        return response
            if isinstance(parsed, RebaseRequest):
                with self._lock.write():
                    with tracer().span("serving.rebase"):
                        self._overlay_folded += self.artifact.rebase()
                        self._rebases += 1
                        # Epoch-preserving and policy-independent: the
                        # response must match on twins with different
                        # rebase histories, so folded counts stay in
                        # ``cache_stats``.
                        return {"ok": True, "op": op, "epoch": self.artifact.epoch}
            assert isinstance(parsed, ShutdownRequest)
            return protocol.error_response(
                "wire-only",
                "op 'shutdown' only exists on a daemon socket",
                op=op,
            )
        except RepairError as exc:
            return {"ok": False, "op": op, "error": str(exc), "code": exc.code}
        except (ValueError, KeyError, TypeError) as exc:
            return {
                "ok": False,
                "op": op,
                "error": str(exc) or repr(exc),
                "code": "repair-failed",
            }

    def serve_batch(self, requests: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Answer a batch in order; deltas take effect for later requests."""
        return [self.query(request) for request in requests]

    # ------------------------------------------------------------- internals
    def _answer_read(self, parsed) -> Dict[str, object]:
        artifact = self.artifact
        op = parsed.op
        if op == "color":
            return {"ok": True, "op": op, "color": artifact.color(parsed.u, parsed.v)}
        if op == "node_palette":
            return {
                "ok": True,
                "op": op,
                "colors": artifact.node_colors(parsed.v),
                "degree": artifact.graph.degree(parsed.v),
            }
        if op == "schedule":
            return {
                "ok": True,
                "op": op,
                "slots": [[c, w] for c, w in artifact.schedule(parsed.v)],
            }
        # op == "stats" (a bare session answer even when a scope was
        # asked for — the daemon intercepts scope="daemon" before us).
        return {"ok": True, "op": op, **artifact.stats()}

    def _apply_delta(self, parsed: DeltaRequest, span=None) -> Dict[str, object]:
        artifact = self.artifact
        op, u, v = parsed.op, parsed.u, parsed.v
        kwargs = {"path": self.repair_path, "radius_limit": self.radius_limit}
        if op == "insert":
            report = artifact.insert(u, v, **kwargs)
        elif op == "delete":
            report = artifact.delete(u, v, **kwargs)
        else:  # set_list
            report = artifact.set_list(u, v, parsed.colors, **kwargs)
        self._deltas_applied += 1
        self._touched_total += report.touched
        self._recolored_total += report.recolored
        self._fallbacks_total += int(report.fallback)
        self.reports.append(report.as_dict())
        if span is not None:
            span.set(
                touched=report.touched,
                recolored=report.recolored,
                fallback=bool(report.fallback),
                path=report.path,
            )
        registry = get_registry()
        registry.counter("serving.deltas_applied").inc()
        registry.histogram("serving.repair_radius", buckets=RADIUS_BUCKETS).observe(
            report.touched
        )
        if report.fallback:
            registry.counter("serving.fallbacks").inc()
        folded = artifact.maybe_rebase(self.rebase_policy)
        if folded:
            self._rebases += 1
            self._overlay_folded += folded
        # ``epoch`` is path-independent (one bump per absorbed delta);
        # the cost fields live only in ``session.reports`` and the
        # ``cache_stats`` totals.
        return {"ok": True, "op": op, "epoch": report.epoch}
