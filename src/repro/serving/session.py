"""The online serving loop: sessions, batched queries, keyed result cache.

A :class:`ServingSession` fronts a :class:`~repro.serving.artifact.ColoringArtifact`
with the request/response surface the CLI and the ``serving_churn``
runner speak.  Requests are plain mappings with an ``op`` field:

================  =====================================  ==================
op                fields                                 answer payload
================  =====================================  ==================
``color``         ``u``, ``v``                           ``color``
``node_palette``  ``v``                                  ``colors``, ``degree``
``schedule``      ``v``                                  ``slots`` ([color, neighbor])
``stats``         —                                      artifact summary
``insert``        ``u``, ``v``                           repair report
``delete``        ``u``, ``v``                           repair report
``set_list``      ``u``, ``v``, ``colors`` (or null)     repair report
================  =====================================  ==================

Read ops are answered through a keyed LRU cache.  Keys reuse the
runtime's content-key recipe (:func:`repro.runtime.spec.canonical_json`
+ truncated sha256, the exact idiom of ``spec.cache_key``) over
``{"epoch": artifact.epoch, "request": request}`` — folding the epoch in
means a delta never serves a stale answer: old-epoch entries simply stop
being addressable and age out of the LRU.  Delta ops are never cached
(they are mutations) and their *reports* carry path-dependent cost
fields, so :meth:`ServingSession.serve_batch` keeps reports out of the
response stream's deterministic core (see the ``serving_churn`` runner,
which digests responses across ``repair_path`` values).

Every response carries ``ok`` — failed requests (absent edge, exhausted
demand list, malformed op) answer ``{"ok": False, "error": ...}``
instead of poisoning the batch, mirroring the runtime's quarantine
philosophy: one bad cell never kills the sweep.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.runtime.spec import canonical_json
from repro.serving.artifact import ColoringArtifact
from repro.serving.repair import RepairError, resolve_repair_path

#: Read-only ops eligible for the result cache.
READ_OPS = ("color", "node_palette", "schedule", "stats")
#: Mutating ops routed to the repair engine.
DELTA_OPS = ("insert", "delete", "set_list")


def result_cache_key(epoch: int, request: Mapping) -> str:
    """Content key for a read request at an artifact epoch.

    Same construction as :func:`repro.runtime.spec.cache_key`: canonical
    JSON (sorted keys, no whitespace drift) hashed with sha256 and
    truncated — two requests collide exactly when they ask the same
    question of the same artifact version.
    """
    payload = canonical_json({"epoch": epoch, "request": dict(request)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class ServingSession:
    """A query/delta session over one artifact, with an LRU answer cache.

    ``repair_path`` pins which twin absorbs deltas (``auto`` →
    ``incremental``); ``radius_limit`` bounds the incremental worklist
    before it falls back to recompute.  Cache statistics are exposed via
    :meth:`cache_stats` and deliberately kept *out* of responses — they
    are observability, not answers.
    """

    def __init__(
        self,
        artifact: ColoringArtifact,
        *,
        cache_size: int = 1024,
        repair_path: str = "auto",
        radius_limit: Optional[int] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.artifact = artifact
        self.repair_path = resolve_repair_path(repair_path)
        self.radius_limit = radius_limit
        self._cache: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._deltas_applied = 0
        self.reports: List[Dict[str, object]] = []

    # ----------------------------------------------------------------- cache
    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._cache),
            "capacity": self._cache_size,
            "deltas_applied": self._deltas_applied,
        }

    def _cache_get(self, key: str) -> Optional[Dict[str, object]]:
        cached = self._cache.get(key)
        if cached is None:
            self._misses += 1
            return None
        self._hits += 1
        self._cache.move_to_end(key)
        return cached

    def _cache_put(self, key: str, response: Dict[str, object]) -> None:
        if self._cache_size == 0:
            return
        self._cache[key] = response
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1

    # --------------------------------------------------------------- serving
    def query(self, request: Mapping) -> Dict[str, object]:
        """Answer one request; never raises on a bad request.

        Read answers are shared through the cache; the returned dict is
        the cached object itself, so callers must treat it as frozen.
        """
        op = request.get("op")
        try:
            if op in READ_OPS:
                key = result_cache_key(self.artifact.epoch, request)
                cached = self._cache_get(key)
                if cached is not None:
                    return cached
                response = self._answer_read(op, request)
                self._cache_put(key, response)
                return response
            if op in DELTA_OPS:
                return self._apply_delta(op, request)
            raise RepairError(f"unknown op {op!r}")
        except (RepairError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "op": op, "error": str(exc) or repr(exc)}

    def serve_batch(self, requests: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Answer a batch in order; deltas take effect for later requests."""
        return [self.query(request) for request in requests]

    # ------------------------------------------------------------- internals
    def _answer_read(self, op: str, request: Mapping) -> Dict[str, object]:
        artifact = self.artifact
        if op == "color":
            u, v = int(request["u"]), int(request["v"])
            return {"ok": True, "op": op, "color": artifact.color(u, v)}
        if op == "node_palette":
            v = int(request["v"])
            return {
                "ok": True,
                "op": op,
                "colors": artifact.node_colors(v),
                "degree": artifact.graph.degree(v),
            }
        if op == "schedule":
            v = int(request["v"])
            return {
                "ok": True,
                "op": op,
                "slots": [[c, w] for c, w in artifact.schedule(v)],
            }
        # op == "stats"
        return {"ok": True, "op": op, **artifact.stats()}

    def _apply_delta(self, op: str, request: Mapping) -> Dict[str, object]:
        artifact = self.artifact
        u, v = int(request["u"]), int(request["v"])
        kwargs = {"path": self.repair_path, "radius_limit": self.radius_limit}
        if op == "insert":
            report = artifact.insert(u, v, **kwargs)
        elif op == "delete":
            report = artifact.delete(u, v, **kwargs)
        else:  # set_list
            colors = request.get("colors")
            report = artifact.set_list(u, v, colors, **kwargs)
        self._deltas_applied += 1
        self.reports.append(report.as_dict())
        # ``epoch`` is path-independent (one bump per absorbed delta);
        # the cost fields live only in ``session.reports``.
        return {"ok": True, "op": op, "epoch": report.epoch}
