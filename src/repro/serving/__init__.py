"""Online serving plane: offline-build / online-serve split with repair.

Architecture overview
=====================

The batch pipelines in :mod:`repro.core` solve a whole instance and
throw the solver state away.  The serving plane splits that lifecycle in
two:

**Offline build** (:mod:`repro.serving.artifact`)
    :func:`build_artifact` runs the canonical priority-greedy coloring
    once over a frozen CSR graph and captures everything a server needs
    in a persistent :class:`ColoringArtifact`: the epoch-versioned
    :class:`repro.graphs.DeltaGraph`, the pair-keyed coloring, sparse
    demand lists, the palette table, and per-node used-color bitmasks
    (a per-epoch cached :class:`repro.coloring.greedy.UsedColorMasks`).
    Artifacts serialize to JSON (``save``/``load``) so a build survives
    the process that made it — the ``repro serve`` CLI writes one, any
    number of ``repro query`` invocations read it.
    :func:`artifact_from_coloring` wraps an arbitrary pipeline coloring
    (e.g. ``ListColoringResult`` with its extracted build state) as a
    lookup-only artifact.

**Online serve** (:mod:`repro.serving.session`)
    :class:`ServingSession` answers batched requests against one
    artifact: color/schedule/palette lookups and **delta requests**
    (edge insert/delete, demand-list change).  Read answers flow
    through a keyed LRU cache whose content keys reuse the runtime's
    recipe (canonical JSON + truncated sha256,
    :func:`repro.runtime.spec.canonical_json`) with the artifact epoch
    folded in — mutation invalidates by construction, not by flushing.

**Incremental repair** (:mod:`repro.serving.repair`)
    Deltas are absorbed by bounded incremental repair: a min-heap
    worklist recolors only the affected repair radius (an exact
    affectedness test prunes the cascade) and falls back to a
    from-scratch recompute when the radius blows past ``radius_limit``.
    Both paths converge on the same canonical fixed point, so repairs
    are **bit-identical** to recomputation — the ``repair_path`` knob
    (``incremental`` / ``recompute``, env ``REPRO_REPAIR_PATH``) pins
    the twin discipline in the differential test matrix, and the
    ``serving_churn`` scenario family measures the speedup the
    incremental path buys under edge churn.

**Durability & long-running serving** (:mod:`repro.serving.journal`,
:mod:`repro.serving.daemon`)
    Long-lived sessions stay bounded and survive restarts:

    * *Auto-rebase*: a :class:`RebasePolicy` (default threshold 0.25 on
      ``overlay_size / base_edges``, ``min_overlay`` 8) folds the
      :class:`~repro.graphs.DeltaGraph` overlay into a fresh CSR base
      when it outgrows the base — **epoch-preserving**, so the result
      cache and per-epoch used-color masks stay valid, and rebasing /
      never-rebasing sessions are bit-identical twins (an explicit
      ``rebase`` op exists alongside the policy; ``rebase_policy="off"``
      disables it).
    * *Delta journal*: ``save(journal=True)`` appends each absorbed
      delta ``{epoch, op, u, v, colors}`` to ``<artifact>.journal``
      (format tag ``repro-coloring-journal/v1``) instead of rewriting
      the full JSON; ``load()`` replays the journal over the base
      artifact, healing a torn tail the same way the runtime's result
      store does; :func:`compact_artifact` folds journal → JSON.
    * *Daemon*: ``python -m repro serve --listen`` serves the
      versioned ``repro-serving/v1`` wire protocol
      (:mod:`repro.serving.protocol` is the normative spec) over a
      threading socket server — reads from any number of connections
      execute concurrently against the current epoch while writes
      serialize on the session's writer lock, journaled **before**
      acknowledgment inside that critical section (acknowledged ⇒
      durable, even under SIGKILL).  A :class:`RotationPolicy`
      (``--journal-max-bytes`` / ``--journal-max-records``) caps the
      active journal with online compact-and-rotate into
      ``<artifact>.journal.N`` segments; graceful shutdown compacts
      everything.  :func:`connect` returns the same duck-typed client
      for an in-process artifact or a daemon address.  The
      ``serving_daemon`` scenario (E13) pins socket responses
      bit-identical to an in-process session, journal-replay recovery
      after SIGKILL, and the concurrent-clients cell's speedup over a
      serialized schedule.
    * *Bounded observability*: ``ServingSession.reports`` is a ring
      buffer (``reports_cap``, default 256); lossless totals live in
      ``cache_stats()`` — long-lived sessions never grow without bound.

Entry points: :func:`repro.api.build_coloring_service`, the ``repro
serve`` / ``repro query`` CLI commands (including ``serve --listen`` /
``serve --compact``), and the ``serving_churn`` / ``serving_daemon``
runners in :mod:`repro.runtime.workloads`.
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    ColoringArtifact,
    RebasePolicy,
    artifact_from_coloring,
    artifact_from_list_coloring,
    build_artifact,
    resolve_rebase_policy,
)
from repro.serving.daemon import (
    ColoringDaemon,
    DaemonClient,
    SessionClient,
    connect,
    spawn_daemon_process,
)
from repro.serving.journal import (
    JOURNAL_FORMAT,
    DeltaJournal,
    JournalError,
    RotationPolicy,
    compact_artifact,
    journal_path,
    resolve_rotation,
    segment_paths,
)
from repro.serving.protocol import (
    ERROR_CODES,
    PROTOCOL_FORMAT,
    DeltaRequest,
    ErrorResponse,
    ProtocolError,
    QueryRequest,
    RebaseRequest,
    StatsRequest,
    parse_request,
)
from repro.serving.repair import (
    DEFAULT_RADIUS_LIMIT,
    REPAIR_PATHS,
    RepairError,
    RepairReport,
    apply_delete,
    apply_insert,
    apply_set_list,
    full_recompute,
    normalize_list,
    resolve_repair_path,
)
from repro.serving.session import (
    CONTROL_OPS,
    DEFAULT_REPORTS_CAP,
    DELTA_OPS,
    READ_OPS,
    ServingSession,
    result_cache_key,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "CONTROL_OPS",
    "DEFAULT_RADIUS_LIMIT",
    "DEFAULT_REPORTS_CAP",
    "DELTA_OPS",
    "ERROR_CODES",
    "JOURNAL_FORMAT",
    "PROTOCOL_FORMAT",
    "READ_OPS",
    "REPAIR_PATHS",
    "ColoringArtifact",
    "ColoringDaemon",
    "DaemonClient",
    "DeltaJournal",
    "DeltaRequest",
    "ErrorResponse",
    "JournalError",
    "ProtocolError",
    "QueryRequest",
    "RebasePolicy",
    "RebaseRequest",
    "RepairError",
    "RepairReport",
    "RotationPolicy",
    "ServingSession",
    "SessionClient",
    "StatsRequest",
    "apply_delete",
    "apply_insert",
    "apply_set_list",
    "artifact_from_coloring",
    "artifact_from_list_coloring",
    "build_artifact",
    "compact_artifact",
    "connect",
    "full_recompute",
    "journal_path",
    "normalize_list",
    "parse_request",
    "resolve_rebase_policy",
    "resolve_repair_path",
    "resolve_rotation",
    "result_cache_key",
    "segment_paths",
    "spawn_daemon_process",
]
