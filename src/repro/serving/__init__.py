"""Online serving plane: offline-build / online-serve split with repair.

Architecture overview
=====================

The batch pipelines in :mod:`repro.core` solve a whole instance and
throw the solver state away.  The serving plane splits that lifecycle in
two:

**Offline build** (:mod:`repro.serving.artifact`)
    :func:`build_artifact` runs the canonical priority-greedy coloring
    once over a frozen CSR graph and captures everything a server needs
    in a persistent :class:`ColoringArtifact`: the epoch-versioned
    :class:`repro.graphs.DeltaGraph`, the pair-keyed coloring, sparse
    demand lists, the palette table, and per-node used-color bitmasks
    (a per-epoch cached :class:`repro.coloring.greedy.UsedColorMasks`).
    Artifacts serialize to JSON (``save``/``load``) so a build survives
    the process that made it — the ``repro serve`` CLI writes one, any
    number of ``repro query`` invocations read it.
    :func:`artifact_from_coloring` wraps an arbitrary pipeline coloring
    (e.g. ``ListColoringResult`` with its extracted build state) as a
    lookup-only artifact.

**Online serve** (:mod:`repro.serving.session`)
    :class:`ServingSession` answers batched requests against one
    artifact: color/schedule/palette lookups and **delta requests**
    (edge insert/delete, demand-list change).  Read answers flow
    through a keyed LRU cache whose content keys reuse the runtime's
    recipe (canonical JSON + truncated sha256,
    :func:`repro.runtime.spec.canonical_json`) with the artifact epoch
    folded in — mutation invalidates by construction, not by flushing.

**Incremental repair** (:mod:`repro.serving.repair`)
    Deltas are absorbed by bounded incremental repair: a min-heap
    worklist recolors only the affected repair radius (an exact
    affectedness test prunes the cascade) and falls back to a
    from-scratch recompute when the radius blows past ``radius_limit``.
    Both paths converge on the same canonical fixed point, so repairs
    are **bit-identical** to recomputation — the ``repair_path`` knob
    (``incremental`` / ``recompute``, env ``REPRO_REPAIR_PATH``) pins
    the twin discipline in the differential test matrix, and the
    ``serving_churn`` scenario family measures the speedup the
    incremental path buys under edge churn.

Entry points: :func:`repro.api.build_coloring_service`, the ``repro
serve`` / ``repro query`` CLI commands, and the ``serving_churn``
runner in :mod:`repro.runtime.workloads`.
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    ColoringArtifact,
    artifact_from_coloring,
    artifact_from_list_coloring,
    build_artifact,
)
from repro.serving.repair import (
    DEFAULT_RADIUS_LIMIT,
    REPAIR_PATHS,
    RepairError,
    RepairReport,
    apply_delete,
    apply_insert,
    apply_set_list,
    full_recompute,
    normalize_list,
    resolve_repair_path,
)
from repro.serving.session import DELTA_OPS, READ_OPS, ServingSession, result_cache_key

__all__ = [
    "ARTIFACT_FORMAT",
    "DEFAULT_RADIUS_LIMIT",
    "DELTA_OPS",
    "READ_OPS",
    "REPAIR_PATHS",
    "ColoringArtifact",
    "RepairError",
    "RepairReport",
    "ServingSession",
    "apply_delete",
    "apply_insert",
    "apply_set_list",
    "artifact_from_coloring",
    "artifact_from_list_coloring",
    "build_artifact",
    "full_recompute",
    "normalize_list",
    "resolve_repair_path",
    "result_cache_key",
]
