"""Compare the paper's algorithms against every baseline on one workload.

Runs the full algorithm suite (the paper's LOCAL and CONGEST algorithms
plus the greedy, linear-in-Δ, Barenboim–Elkin and randomized baselines)
on a configurable workload and prints the comparison table used by
experiment E6 of DESIGN.md.

Run with::

    python examples/compare_baselines.py [delta] [nodes]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.experiments import run_algorithm_suite
from repro.analysis.tables import format_records
from repro.graphs import generators


def main():
    delta = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 96

    graph = generators.random_regular_graph(nodes, delta, seed=1)
    print(
        f"workload: random {delta}-regular graph, {graph.num_nodes} nodes, "
        f"{graph.num_edges} edges\n"
    )
    records = run_algorithm_suite(
        graph,
        experiment="compare",
        parameters={"delta": delta, "n": nodes},
        algorithms=(
            "local-list-coloring",
            "congest-8eps",
            "greedy-by-classes",
            "linear-in-delta",
            "barenboim-elkin",
            "randomized",
            "sequential",
        ),
    )
    print(
        format_records(
            records,
            columns=["algorithm", "colors", "bound", "rounds", "proper"],
        )
    )
    print(
        "\nNote: the paper's algorithms trade constant-factor overhead at small Δ "
        "for polylogarithmic growth in Δ; see benchmarks/results/E6_round_scaling.txt."
    )

    # Returned so the test suite can validate the suite run with the
    # verification.checkers invariants.
    return {"graph": graph, "records": records}


if __name__ == "__main__":
    main()
