"""TDMA link scheduling in a wireless mesh via (8+ε)Δ edge coloring.

In a wireless mesh network, two links that share an endpoint cannot be
active in the same TDMA slot (the radio is half-duplex).  A proper edge
coloring of the connectivity graph therefore gives a feasible TDMA frame,
and the frame length is the number of colors.  The degree of a node is
the number of links it participates in, so Δ slots are always necessary.

This example builds a mesh (a random power-law topology — a few gateways
with many links, many leaf routers), schedules it with the CONGEST
algorithm of Theorem 1.2 — the relevant model, since wireless control
messages are small — and compares the frame length and round count with
the classic distributed baselines.

Run with::

    python examples/wireless_tdma.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.baselines.greedy_by_classes import greedy_baseline_edge_coloring
from repro.baselines.randomized import randomized_edge_coloring
from repro.graphs import generators


def main():
    mesh = generators.power_law_graph(n=150, attachment=4, seed=11)
    delta = mesh.max_degree
    print(f"mesh: {mesh.num_nodes} routers, {mesh.num_edges} links, max degree Δ = {delta}")

    congest = api.color_edges_congest(mesh, epsilon=0.5)
    greedy = greedy_baseline_edge_coloring(mesh)
    randomized = randomized_edge_coloring(mesh, seed=3)

    print("\nTDMA frame length (slots) and distributed round cost:")
    print(f"  lower bound (Δ)                 : {delta}")
    print(
        f"  paper, Theorem 1.2 (CONGEST)    : {congest.num_colors} slots, "
        f"{congest.rounds} rounds, bound (8+ε)Δ = {congest.bound:.0f}"
    )
    print(
        f"  greedy via O(Δ̄²) schedule       : {greedy.num_colors} slots, {greedy.rounds} rounds"
    )
    print(
        f"  randomized (needs shared coins) : {randomized.num_colors} slots, {randomized.rounds} rounds"
    )
    print(f"  conflict-free                   : {congest.is_proper}")

    # How much of the frame does a typical router actually use?
    per_node_slots = []
    for v in mesh.nodes():
        used = {congest.colors[e] for e in mesh.incident_edges(v)}
        per_node_slots.append(len(used))
    print(
        f"\nper-router active slots: max {max(per_node_slots)}, "
        f"median {sorted(per_node_slots)[len(per_node_slots) // 2]}"
    )

    # Returned so the test suite can validate the schedules with the
    # verification.checkers invariants.
    return {
        "mesh": mesh,
        "congest": congest,
        "greedy": greedy,
        "randomized": randomized,
    }


if __name__ == "__main__":
    main()
