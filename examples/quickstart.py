"""Quickstart: color the edges of a network with at most 2Δ−1 colors.

Builds a random 8-regular network, runs the paper's LOCAL-model
(degree+1)-list edge coloring algorithm (Theorem 1.1), verifies the
result, and prints how many colors and communication rounds were needed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.graphs import generators


def main():
    graph = generators.random_regular_graph(n=96, degree=8, seed=42)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} links, max degree Δ = {graph.max_degree}")

    outcome = api.color_edges_local(graph)

    print(f"algorithm      : {outcome.algorithm} (Theorem 1.1)")
    print(f"colors used    : {outcome.num_colors}  (bound 2Δ−1 = {outcome.bound})")
    print(f"rounds charged : {outcome.rounds}")
    print(f"proper coloring: {outcome.is_proper}")

    # The per-phase round breakdown shows where the time goes.
    breakdown = outcome.details["round_breakdown"]
    print("\nround breakdown (top 5 phases):")
    for label, rounds in sorted(breakdown.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {rounds:6d}  {label}")

    # Returned so the test suite can validate the run with the
    # verification.checkers invariants.
    return {"graph": graph, "outcome": outcome}


if __name__ == "__main__":
    main()
