"""Crossbar switch scheduling via bipartite edge coloring (Lemma 6.1).

A classic application of bipartite edge coloring: an input-queued switch
has ``n`` input ports and ``n`` output ports; a traffic demand asks for a
set of (input, output) transfers, each taking one timeslot, and a port
can serve at most one transfer per slot.  A proper edge coloring of the
demand graph is exactly a conflict-free slot schedule, and the number of
colors is the schedule length (the optimum is the maximum port load Δ).

This example builds a demand matrix, schedules it with the paper's
(2+ε)Δ bipartite algorithm, and reports the schedule length against the
Δ lower bound and against a sequential greedy schedule.

Run with::

    python examples/switch_scheduling.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.baselines.sequential import sequential_greedy_edge_coloring
from repro.graphs import generators


def build_demand(ports: int, load: int, seed: int):
    """A demand graph where every port sends/receives exactly ``load`` transfers."""
    graph, bipartition = generators.regular_bipartite_graph(ports, load, seed=seed)
    return graph, bipartition


def schedule_length(colors) -> int:
    return len(set(colors.values()))


def main():
    ports, load = 48, 12
    graph, bipartition = build_demand(ports, load, seed=7)
    print(f"switch: {ports} input ports, {ports} output ports")
    print(f"demand: {graph.num_edges} transfers, per-port load Δ = {load}")

    outcome = api.color_edges_bipartite(graph, bipartition, epsilon=0.5)
    greedy = sequential_greedy_edge_coloring(graph)

    print("\nschedules (number of timeslots):")
    print(f"  lower bound (Δ)            : {load}")
    print(f"  paper, Lemma 6.1           : {outcome.num_colors}  "
          f"(palette bound (2+ε)Δ = {outcome.bound:.0f}, rounds = {outcome.rounds})")
    print(f"  centralized greedy         : {schedule_length(greedy)}")
    print(f"  proper / conflict-free     : {outcome.is_proper}")

    # Per-slot utilization of the distributed schedule.
    slots = {}
    for edge, slot in outcome.colors.items():
        slots.setdefault(slot, 0)
        slots[slot] += 1
    best = max(slots.values())
    average = sum(slots.values()) / len(slots)
    print(f"\nslot utilization: peak {best}/{ports} ports busy, average {average:.1f}")

    # Returned so the test suite can validate the schedule with the
    # verification.checkers invariants.
    return {"graph": graph, "bipartition": bipartition, "outcome": outcome, "greedy": greedy}


if __name__ == "__main__":
    main()
