"""Device pairing via maximal matching (the Section 1 reduction).

Edge coloring is one of the four classic symmetry-breaking problems the
paper's introduction discusses; a C-edge coloring immediately gives a
maximal matching after C more rounds.  This example uses that reduction
for a practical task: pairing devices in a proximity network so that
paired devices can exchange work, with every device in at most one pair
and no two unpaired neighbors left over.

Run with::

    python examples/pairing_via_matching.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.classic.matching import maximal_matching
from repro.distributed.rounds import RoundTracker
from repro.graphs import generators
from repro.verification.checkers import is_maximal_matching


def main():
    network = generators.erdos_renyi_graph(n=120, p=0.06, seed=8)
    print(
        f"proximity network: {network.num_nodes} devices, {network.num_edges} links, "
        f"max degree Δ = {network.max_degree}"
    )

    tracker = RoundTracker()
    matching, edge_colors = maximal_matching(network, tracker=tracker)

    paired = 2 * len(matching)
    isolated = sum(1 for v in network.nodes() if network.degree(v) == 0)
    print(f"\npairs formed          : {len(matching)}")
    print(f"devices paired        : {paired} / {network.num_nodes - isolated} pairable")
    print(f"maximal matching      : {is_maximal_matching(network, matching)}")
    print(f"edge-coloring colors C: {len(set(edge_colors.values()))}")
    print(f"total rounds charged  : {tracker.total} "
          f"(coloring + C rounds of class scanning)")

    # Returned so the test suite can validate the pairing with the
    # verification.checkers invariants.
    return {"network": network, "matching": matching, "edge_colors": edge_colors}


if __name__ == "__main__":
    main()
